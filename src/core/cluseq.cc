#include "core/cluseq.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <sstream>
#include <unordered_map>

#include "core/checkpoint.h"
#include "core/prefilter.h"
#include "core/seeding.h"
#include "core/similarity.h"
#include "core/threshold.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "pst/pst_serialization.h"
#include "util/build_info.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace cluseq {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();

uint64_t HashMembers(const std::vector<size_t>& members) {
  // FNV-1a over the (already sorted) member indices.
  uint64_t h = 1469598103934665603ULL;
  for (size_t m : members) {
    h ^= static_cast<uint64_t>(m);
    h *= 1099511628211ULL;
  }
  return h;
}
}  // namespace

Status CluseqOptions::Validate() const {
  if (initial_clusters == 0) {
    return Status::InvalidArgument("initial_clusters must be >= 1");
  }
  if (!(similarity_threshold >= 1.0)) {
    return Status::InvalidArgument(
        "similarity_threshold must be >= 1 (paper §2)");
  }
  if (significance_threshold == 0) {
    return Status::InvalidArgument("significance_threshold must be >= 1");
  }
  if (!(sample_multiplier >= 1.0)) {
    return Status::InvalidArgument("sample_multiplier must be >= 1");
  }
  if (max_iterations == 0) {
    return Status::InvalidArgument("max_iterations must be >= 1");
  }
  if (histogram_buckets < 4) {
    return Status::InvalidArgument("histogram_buckets must be >= 4");
  }
  if (!(auto_threshold_quantile > 0.0) || !(auto_threshold_quantile < 1.0)) {
    return Status::InvalidArgument(
        "auto_threshold_quantile must be in (0, 1)");
  }
  if (resume && checkpoint_dir.empty()) {
    return Status::InvalidArgument("resume requires checkpoint_dir");
  }
  if (!(adjust_bound_window > 0.0)) {
    return Status::InvalidArgument("adjust_bound_window must be > 0");
  }
  return pst.Validate();
}

double ClusteringResult::final_threshold() const {
  return std::exp(final_log_threshold);
}

CluseqClusterer::CluseqClusterer(const SequenceStore& db,
                                 CluseqOptions options)
    : db_(db), options_(options), rng_(options.rng_seed) {
  // Single source of truth for c.
  options_.pst.significance_threshold = options_.significance_threshold;
  // 0 = auto-detect: resolve once here so every phase (and the RunReport
  // echo) sees the effective width.
  options_.num_threads = ResolveThreads(options_.num_threads);
  bank_.set_signature_budget_bytes(options_.signature_budget_bytes);
}

CluseqClusterer::~CluseqClusterer() = default;

size_t CluseqClusterer::PlanNewClusters(size_t iteration) const {
  size_t planned;
  if (iteration == 1) {
    planned = options_.initial_clusters;
  } else {
    // Growth factor f = max(k'_n - k'_c, 0) / k'_n (see DESIGN.md on the
    // denominator): full pace while consolidation removes nothing, throttled
    // toward zero once new clusters start being merged away. The formula is
    // undefined at k'_n = 0; "nothing generated, nothing consolidated" reads
    // as full pace (otherwise growth could never restart after the threshold
    // rises and sequences fall back out of clusters), while "nothing
    // generated, some consolidated" reads as zero.
    double f;
    if (prev_new_ > 0) {
      f = std::max(static_cast<double>(prev_new_) -
                       static_cast<double>(prev_consolidated_),
                   0.0) /
          static_cast<double>(prev_new_);
    } else {
      f = prev_consolidated_ == 0 ? 1.0 : 0.0;
    }
    planned = static_cast<size_t>(
        std::llround(static_cast<double>(clusters_.size()) * f));
    // Rescue: with no clusters at all but unclustered sequences remaining,
    // always try at least one seed so the algorithm cannot stall at zero.
    if (clusters_.empty() && !unclustered_.empty()) {
      planned = std::max<size_t>(planned, 1);
    }
  }
  return std::min(planned, unclustered_.size());
}

double CluseqClusterer::EstimateInitialLogThreshold() {
  CLUSEQ_TRACE_SPAN("cluseq.estimate_threshold");
  static obs::Counter& estimates =
      obs::MetricsRegistry::Get().GetCounter("threshold.initial_estimates");
  estimates.Increment();
  const size_t n = db_.size();
  const size_t sample_size = std::min<size_t>(n, 24);
  if (sample_size < 3) return std::log(options_.similarity_threshold);
  std::vector<size_t> sample = rng_.SampleWithoutReplacement(n, sample_size);
  // Single-sequence summaries, compiled once each and scored pairwise with
  // the automaton scan. The live trees are throwaways.
  std::vector<std::shared_ptr<const FrozenPst>> frozen(sample_size);
  ParallelFor(sample_size, options_.num_threads, [&](size_t j) {
    Pst pst(db_.alphabet().size(), options_.pst);
    pst.InsertSequence(db_.Symbols(sample[j]));
    frozen[j] = std::make_shared<const FrozenPst>(pst, background_);
  });
  std::vector<double> pairwise(sample_size * sample_size, kNegInf);
  const auto sample_cost = [&](size_t i) -> uint64_t {
    return db_.Length(sample[i]);
  };
  if (options_.batched_scan) {
    // One interleaved pass per sample sequence scores it against every
    // other sample's model at once.
    const FrozenBank sample_bank(frozen);
    ParallelForWeighted(sample_size, options_.num_threads, sample_cost,
                        [&](size_t i) {
      std::vector<SimilarityResult> row =
          sample_bank.ScanAll(db_.Symbols(sample[i]));
      for (size_t j = 0; j < sample_size; ++j) {
        if (i == j) continue;
        pairwise[i * sample_size + j] = row[j].log_sim;
      }
    });
  } else {
    ParallelForWeighted(sample_size, options_.num_threads, sample_cost,
                        [&](size_t i) {
      for (size_t j = 0; j < sample_size; ++j) {
        if (i == j) continue;
        pairwise[i * sample_size + j] =
            ComputeSimilarity(*frozen[j], db_.Symbols(sample[i])).log_sim;
      }
    });
  }
  std::vector<double> sims;
  sims.reserve(sample_size * (sample_size - 1));
  for (double s : pairwise) {
    if (std::isfinite(s)) sims.push_back(s);
  }
  if (sims.size() < 8) return std::log(options_.similarity_threshold);
  size_t pos = static_cast<size_t>(options_.auto_threshold_quantile *
                                   static_cast<double>(sims.size() - 1));
  std::nth_element(sims.begin(), sims.begin() + static_cast<long>(pos),
                   sims.end());
  // t >= 1 always (paper §2).
  return std::max(sims[pos], 0.0);
}

void CluseqClusterer::GenerateNewClusters(size_t count) {
  if (count == 0) return;
  size_t sample_size = static_cast<size_t>(
      std::ceil(options_.sample_multiplier * static_cast<double>(count)));
  // Seeding scores samples against the existing clusters' snapshots, which
  // also pre-warms them for this iteration's re-cluster scan.
  RefreshFrozen();
  std::vector<size_t> seeds =
      SelectSeeds(db_, unclustered_, count, sample_size, Snapshots(),
                  background_, options_.pst, options_.num_threads, &rng_,
                  options_.batched_scan, options_.prefilter);
  for (size_t seq_index : seeds) {
    clusters_.emplace_back(next_cluster_id_++, db_.alphabet().size(),
                           options_.pst);
    clusters_.back().Seed(db_.Symbols(seq_index), seq_index);
  }
}

std::vector<size_t> CluseqClusterer::VisitOrderIndices() {
  std::vector<size_t> order(db_.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  switch (options_.visit_order) {
    case VisitOrder::kFixed:
      break;
    case VisitOrder::kRandom:
      rng_.Shuffle(order);
      break;
    case VisitOrder::kClusterBased:
      if (!prev_best_cluster_.empty()) {
        std::stable_sort(order.begin(), order.end(),
                         [this](size_t a, size_t b) {
                           // Unclustered (-1) sequences go last.
                           uint32_t ca = prev_best_cluster_[a] < 0
                                             ? UINT32_MAX
                                             : static_cast<uint32_t>(
                                                   prev_best_cluster_[a]);
                           uint32_t cb = prev_best_cluster_[b] < 0
                                             ? UINT32_MAX
                                             : static_cast<uint32_t>(
                                                   prev_best_cluster_[b]);
                           return ca < cb;
                         });
      }
      break;
  }
  return order;
}

void CluseqClusterer::RebuildClusterPsts() {
  // Purification step: the paper only ever *adds* counts to a cluster's
  // PST, so sequences that joined under an early (too-permissive) threshold
  // would contaminate the summary forever. Rebuilding from the current
  // membership keeps the PST an honest summary of exactly its members —
  // each contributing the segment that maximized its similarity under the
  // outgoing summary. Orthogonal to `within_scan_updates`: this runs between
  // iterations, never inside a scan.
  //
  // Incremental skip: when the recomputed segments are exactly what the
  // tree already counts, resetting and reinserting them would reproduce the
  // identical tree (pure counting is commutative across insert order), so
  // the tree — and its compiled snapshot — is left untouched and the
  // cluster needs no re-freeze this iteration. A memory budget makes
  // insertion-order-dependent pruning kick in, so then we always rebuild.
  const bool can_skip = options_.pst.max_memory_bytes == 0;
  CLUSEQ_TRACE_SPAN("cluseq.rebuild_psts");
  // Freeze every stale summary up front (independent per-cluster tasks);
  // the segment recomputation below reads only compiled snapshots, which
  // also spares the workers from contending on live-tree pointer chasing.
  // A stale empty cluster frozen here would have been frozen later in the
  // same iteration anyway, so the re-freeze totals are unchanged.
  RefreshFrozen();
  const size_t kc = clusters_.size();
  // Flatten (cluster, member) pairs so one cost-weighted pass balances the
  // whole rebuild at once; fanning out per cluster would serialize on small
  // clusters while one big cluster hogs a worker.
  struct Item {
    uint32_t cluster;
    uint32_t member;
  };
  std::vector<Item> items;
  std::vector<std::vector<Cluster::Segment>> segments(kc);
  for (size_t ci = 0; ci < kc; ++ci) {
    const size_t count = clusters_[ci].members().size();
    segments[ci].resize(count);
    for (size_t mi = 0; mi < count; ++mi) {
      items.push_back({static_cast<uint32_t>(ci), static_cast<uint32_t>(mi)});
    }
  }
  ParallelForWeighted(
      items.size(), options_.num_threads,
      [&](size_t i) -> uint64_t {
        const Item& it = items[i];
        return db_.Length(clusters_[it.cluster].members()[it.member]);
      },
      [&](size_t i) {
        const Item& it = items[i];
        const Cluster& cluster = clusters_[it.cluster];
        const size_t s = cluster.members()[it.member];
        SimilarityResult sim = ComputeSimilarity(*cluster.frozen(), db_.Symbols(s));
        segments[it.cluster][it.member] = {sim.best_begin, sim.best_end};
      });
  // Clusters are disjoint state and each is rebuilt by exactly one task in
  // member order, so insertion-order-dependent pruning under a memory
  // budget reproduces the serial rebuild bit-for-bit.
  ParallelForWeighted(
      kc, options_.num_threads,
      [&](size_t ci) -> uint64_t { return clusters_[ci].size(); },
      [&](size_t ci) {
        Cluster& cluster = clusters_[ci];
        const std::vector<size_t>& members = cluster.members();
        if (members.empty()) return;
        if (can_skip && cluster.ContributionsMatch(members, segments[ci])) {
          return;
        }
        cluster.ResetPst();
        for (size_t i = 0; i < members.size(); ++i) {
          cluster.AbsorbSegment(members[i], db_.Symbols(members[i]),
                                segments[ci][i].begin, segments[ci][i].end);
        }
      });
}

size_t CluseqClusterer::RefreshFrozen() {
  std::vector<size_t> stale;
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    if (!clusters_[ci].frozen_fresh()) stale.push_back(ci);
  }
  // Freeze cost scales with tree size, and cluster sizes are skewed —
  // weight by node count so one giant cluster does not serialize the tail.
  ParallelForWeighted(
      stale.size(), options_.num_threads,
      [&](size_t i) -> uint64_t { return clusters_[stale[i]].pst().NumNodes(); },
      [&](size_t i) {
        Cluster& cluster = clusters_[stale[i]];
        cluster.SetFrozen(
            std::make_shared<const FrozenPst>(cluster.pst(), background_));
      });
  refrozen_this_iter_ += stale.size();
  return stale.size();
}

std::vector<std::shared_ptr<const FrozenPst>> CluseqClusterer::Snapshots()
    const {
  std::vector<std::shared_ptr<const FrozenPst>> snapshots(clusters_.size());
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    snapshots[ci] = clusters_[ci].frozen();
  }
  return snapshots;
}

void CluseqClusterer::Recluster() {
  const size_t n = db_.size();
  for (Cluster& c : clusters_) c.ClearMembers();
  joined_.assign(n, {});
  best_log_sim_.assign(n, kNegInf);
  all_log_sims_.clear();
  all_log_sims_.reserve(n * clusters_.size());
  const size_t kc = clusters_.size();

  if (!options_.within_scan_updates) {
    // Batch mode (default): freeze every cluster summary once, fan the
    // n × kc similarity evaluations out across sequences, then apply joins
    // and segment absorption sequentially. Scores against a frozen summary
    // are bit-for-bit those of the live tree, and the deferred apply phase
    // only bumps commutative counts, so the iteration is independent of
    // both visit order and thread count.
    if (kc == 0) return;
    std::vector<SimilarityResult> sims(n * kc);
    {
      CLUSEQ_TRACE_SPAN("cluseq.scan");
      obs::PerfScope perf_scope = phase_perf_.Sample("scan");
      static obs::Counter& scan_symbols_counter =
          obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
      static obs::Gauge& scan_rate_gauge = obs::MetricsRegistry::Get().GetGauge(
          "frozen_bank.scan_symbols_per_sec");
      const uint64_t scan_symbols_before = scan_symbols_counter.Value();
      Stopwatch scan_timer;
      RefreshFrozen();  // Only dirty clusters are recompiled.
      const std::vector<std::shared_ptr<const FrozenPst>> snapshots =
          Snapshots();
      // Scan cost is linear in sequence length; weighted chunking keeps a
      // length-skewed database from parking workers behind one straggler.
      const auto scan_cost = [this](size_t s) -> uint64_t {
        return db_.Length(s);
      };
      if (options_.batched_scan) {
        // Pack every snapshot into the scoring arena (untouched models keep
        // their rows byte-identical) and run one interleaved scan per
        // sequence instead of kc serial automaton scans.
        bank_.Assemble(snapshots);
        if (prefilter_active_) {
          // Multi-level pruned scan against scan_target_ — log t while the
          // §4.6 adjuster is frozen or off, the censored floor
          // log t − adjust_bound_window while it is live. Joins and the
          // per-sequence max are exact (see ScanPrefilter); pruned slots
          // hold admissible bounds < the target, and everything at or
          // above the target is exact, which is all the join pass and the
          // floor-censored adjuster histogram ever look at.
          CLUSEQ_TRACE_SPAN("cluseq.prefilter_scan");
          ScanPrefilter prefilter(&bank_, options_.prefilter_prefix);
          std::atomic<uint64_t> skipped{0};
          std::atomic<uint64_t> early_exits{0};
          std::atomic<uint64_t> l15_pruned{0};
          std::atomic<uint64_t> checkpoints{0};
          ParallelForWeighted(
              n, options_.num_threads, scan_cost, [&](size_t s) {
                PrefilterScanStats scan_stats;
                prefilter.ScanAllWithThreshold(db_.Symbols(s), scan_target_,
                                               sims.data() + s * kc,
                                               &scan_stats);
                skipped.fetch_add(scan_stats.candidates_skipped,
                                  std::memory_order_relaxed);
                early_exits.fetch_add(scan_stats.dp_early_exits,
                                      std::memory_order_relaxed);
                l15_pruned.fetch_add(scan_stats.l15_pruned,
                                     std::memory_order_relaxed);
                checkpoints.fetch_add(scan_stats.checkpoints,
                                      std::memory_order_relaxed);
              });
          prefilter_pairs_this_iter_ += n * kc;
          prefilter_skipped_this_iter_ +=
              static_cast<size_t>(skipped.load(std::memory_order_relaxed));
          prefilter_early_exits_this_iter_ += static_cast<size_t>(
              early_exits.load(std::memory_order_relaxed));
          prefilter_l15_this_iter_ += static_cast<size_t>(
              l15_pruned.load(std::memory_order_relaxed));
          prefilter_checkpoints_this_iter_ += static_cast<size_t>(
              checkpoints.load(std::memory_order_relaxed));
        } else {
          ParallelForWeighted(
              n, options_.num_threads, scan_cost, [&](size_t s) {
                bank_.ScanAll(db_.Symbols(s), sims.data() + s * kc);
              });
        }
      } else {
        ParallelForWeighted(n, options_.num_threads, scan_cost, [&](size_t s) {
          const std::span<const SymbolId> symbols = db_.Symbols(s);
          for (size_t ci = 0; ci < kc; ++ci) {
            sims[s * kc + ci] = ComputeSimilarity(*snapshots[ci], symbols);
          }
        });
      }
      const double scan_elapsed = scan_timer.ElapsedSeconds();
      scan_seconds_this_iter_ += scan_elapsed;
      const uint64_t scanned =
          scan_symbols_counter.Value() - scan_symbols_before;
      if (scan_elapsed > 0.0 && scanned > 0) {
        scan_rate_gauge.Set(static_cast<double>(scanned) / scan_elapsed);
      }
    }
    CLUSEQ_TRACE_SPAN("cluseq.join");
    obs::PerfScope join_perf_scope = phase_perf_.Sample("join");
    Stopwatch join_timer;
    // Deferred apply, parallel in two passes. Pass 1 is per-sequence: every
    // written slot (the all_log_sims_ position, best_log_sim_[s],
    // joined_[s]) is owned by exactly one task, and joined_[s] is built in
    // ascending ci — the order the serial sweep produced. Pass 2 is
    // cluster-sharded: each task owns a disjoint cluster and applies its
    // joins in ascending s, reproducing exactly that cluster's subsequence
    // of the serial sweep, so member order and PST insertion order (which
    // pruning under a memory budget depends on) are thread-count-invariant.
    all_log_sims_.resize(n * kc);
    ParallelFor(n, options_.num_threads, [&](size_t s) {
      for (size_t ci = 0; ci < kc; ++ci) {
        const SimilarityResult& sim = sims[s * kc + ci];
        all_log_sims_[s * kc + ci] = sim.log_sim;
        best_log_sim_[s] = std::max(best_log_sim_[s], sim.log_sim);
        if (sim.log_sim >= log_t_ && std::isfinite(sim.log_sim)) {
          joined_[s].push_back({clusters_[ci].id(), sim.log_sim});
        }
      }
    });
    std::vector<size_t> joins_per_cluster(kc, 0);
    ParallelFor(kc, options_.num_threads, [&](size_t ci) {
      Cluster& cluster = clusters_[ci];
      for (size_t s = 0; s < n; ++s) {
        const SimilarityResult& sim = sims[s * kc + ci];
        if (sim.log_sim >= log_t_ && std::isfinite(sim.log_sim)) {
          ++joins_per_cluster[ci];
          cluster.AddMember(s);
          cluster.AbsorbSegment(s, db_.Symbols(s), sim.best_begin,
                                sim.best_end);
        }
      }
    });
    size_t joins = 0;
    for (size_t c : joins_per_cluster) joins += c;
    join_seconds_this_iter_ += join_timer.ElapsedSeconds();
    static obs::Counter& join_counter =
        obs::MetricsRegistry::Get().GetCounter("cluseq.joins");
    join_counter.Add(joins);
    return;
  }

  // §4.2 mode: sequences are visited one at a time and each join updates
  // the joined cluster's PST mid-scan, which later sequences observe — so
  // parallelism can only be applied across clusters for one sequence.
  // Scoring and joining interleave here, so one "scan" phase covers both.
  obs::PerfScope perf_scope = phase_perf_.Sample("scan");
  std::vector<size_t> order = VisitOrderIndices();
  std::vector<SimilarityResult> sims;
  for (size_t seq_index : order) {
    const std::span<const SymbolId> seq = db_.Symbols(seq_index);
    sims.assign(kc, SimilarityResult{});
    size_t threads = kc >= 4 ? options_.num_threads : 1;
    ParallelFor(kc, threads, [&](size_t ci) {
      sims[ci] = ComputeSimilarity(clusters_[ci].pst(), background_, seq);
    });
    for (size_t ci = 0; ci < kc; ++ci) {
      const SimilarityResult& sim = sims[ci];
      all_log_sims_.push_back(sim.log_sim);
      best_log_sim_[seq_index] = std::max(best_log_sim_[seq_index],
                                          sim.log_sim);
      if (sim.log_sim >= log_t_ && std::isfinite(sim.log_sim)) {
        clusters_[ci].AddMember(seq_index);
        joined_[seq_index].push_back({clusters_[ci].id(), sim.log_sim});
        clusters_[ci].AbsorbSegment(seq_index, seq, sim.best_begin,
                                    sim.best_end);
      }
    }
  }
}

size_t CluseqClusterer::Consolidate() {
  const size_t kc = clusters_.size();
  if (kc == 0) return 0;
  const size_t min_unique = options_.min_unique_members > 0
                                ? options_.min_unique_members
                                : static_cast<size_t>(
                                      options_.significance_threshold);

  // Ascending size; ties broken by position so exact duplicates cannot
  // mutually survive.
  std::vector<size_t> order(kc);
  for (size_t i = 0; i < kc; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return clusters_[a].size() < clusters_[b].size();
  });
  std::vector<size_t> rank(kc);
  for (size_t p = 0; p < kc; ++p) rank[order[p]] = p;

  // seq index -> positions of clusters containing it.
  std::unordered_map<size_t, std::vector<size_t>> containing;
  for (size_t ci = 0; ci < kc; ++ci) {
    for (size_t s : clusters_[ci].members()) containing[s].push_back(ci);
  }

  std::vector<bool> alive(kc, true);
  size_t removed = 0;
  for (size_t p = 0; p < kc; ++p) {
    size_t i = order[p];
    size_t unique = 0;
    for (size_t s : clusters_[i].members()) {
      bool shadowed = false;
      for (size_t j : containing[s]) {
        if (j != i && alive[j] && rank[j] > rank[i]) {
          shadowed = true;
          break;
        }
      }
      if (!shadowed) ++unique;
    }
    if (unique < min_unique) {
      alive[i] = false;
      ++removed;
    }
  }

  if (removed > 0) {
    std::vector<Cluster> kept;
    kept.reserve(kc - removed);
    for (size_t i = 0; i < kc; ++i) {
      if (alive[i]) kept.push_back(std::move(clusters_[i]));
    }
    clusters_ = std::move(kept);
  }
  return removed;
}

void CluseqClusterer::RebuildMembershipViews() {
  const size_t n = db_.size();
  std::unordered_map<uint32_t, int32_t> id_to_pos;
  for (size_t ci = 0; ci < clusters_.size(); ++ci) {
    id_to_pos[clusters_[ci].id()] = static_cast<int32_t>(ci);
  }
  prev_best_cluster_.assign(n, -1);
  unclustered_.clear();
  for (size_t s = 0; s < n; ++s) {
    double best = kNegInf;
    int32_t best_pos = -1;
    for (const Joined& j : joined_[s]) {
      auto it = id_to_pos.find(j.cluster_id);
      if (it == id_to_pos.end()) continue;  // Cluster was consolidated away.
      if (j.log_sim > best) {
        best = j.log_sim;
        best_pos = it->second;
      }
    }
    prev_best_cluster_[s] = best_pos;
    if (best_pos < 0) unclustered_.push_back(s);
  }
}

std::vector<uint64_t> CluseqClusterer::MembershipFingerprint() const {
  std::vector<uint64_t> hashes;
  hashes.reserve(clusters_.size());
  for (const Cluster& c : clusters_) {
    std::vector<size_t> members = c.members();
    std::sort(members.begin(), members.end());
    hashes.push_back(HashMembers(members));
  }
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

ClustererCheckpoint CluseqClusterer::BuildCheckpoint(
    uint64_t iteration, const ThresholdAdjuster& adjuster,
    const std::vector<uint64_t>& prev_fingerprint,
    bool have_prev_fingerprint) const {
  ClustererCheckpoint ckpt;
  ckpt.options_fingerprint = FingerprintOptions(options_);
  ckpt.corpus_fingerprint = db_.ContentFingerprint();
  ckpt.num_sequences = db_.size();
  ckpt.total_symbols = db_.TotalSymbols();
  ckpt.build = BuildVersionString();
  ckpt.iteration = iteration;
  ckpt.log_t = log_t_;
  ckpt.next_cluster_id = next_cluster_id_;
  ckpt.prev_new = prev_new_;
  ckpt.prev_consolidated = prev_consolidated_;
  ckpt.adjuster_frozen = adjuster.frozen();
  ckpt.have_prev_fingerprint = have_prev_fingerprint;
  ckpt.prev_fingerprint = prev_fingerprint;
  ckpt.rng = rng_.SaveState();
  ckpt.prev_best_cluster = prev_best_cluster_;
  ckpt.best_log_sim = best_log_sim_;
  ckpt.unclustered.assign(unclustered_.begin(), unclustered_.end());
  ckpt.clusters.reserve(clusters_.size());
  for (const Cluster& cluster : clusters_) {
    CheckpointClusterState state;
    state.id = cluster.id();
    state.seed_index = cluster.seed_index();
    state.members.assign(cluster.members().begin(), cluster.members().end());
    state.contributions.reserve(cluster.contributions().size());
    for (const auto& [seq, segment] : cluster.contributions()) {
      state.contributions.push_back({static_cast<uint64_t>(seq),
                                     static_cast<uint64_t>(segment.begin),
                                     static_cast<uint64_t>(segment.end)});
    }
    // Canonical order: the map iterates nondeterministically, but the
    // encoded bytes must be a pure function of the cluster state.
    std::sort(state.contributions.begin(), state.contributions.end(),
              [](const auto& a, const auto& b) {
                return a.seq_index < b.seq_index;
              });
    std::ostringstream blob;
    // SavePst only fails on stream write errors, which an ostringstream
    // never produces.
    Status st = SavePst(cluster.pst(), blob);
    CLUSEQ_CHECK(st.ok(), "in-memory PST serialization cannot fail");
    state.pst_blob = blob.str();
    ckpt.clusters.push_back(std::move(state));
  }
  return ckpt;
}

Status CluseqClusterer::RestoreFromCheckpoint(
    const ClustererCheckpoint& ckpt, ThresholdAdjuster* adjuster,
    std::vector<uint64_t>* prev_fingerprint, bool* have_prev_fingerprint) {
  if (ckpt.options_fingerprint != FingerprintOptions(options_)) {
    return Status::FailedPrecondition(
        "checkpoint was written under different algorithmic options; "
        "resume with the original options or start fresh without --resume");
  }
  if (ckpt.num_sequences != db_.size() ||
      ckpt.total_symbols != db_.TotalSymbols() ||
      ckpt.corpus_fingerprint != db_.ContentFingerprint()) {
    return Status::FailedPrecondition(
        "checkpoint was written against a different corpus; resume with "
        "the original input or start fresh without --resume");
  }
  background_ = BackgroundModel::FromDatabase(db_);
  rng_ = Rng(options_.rng_seed);
  rng_.RestoreState(ckpt.rng);
  clusters_.clear();
  clusters_.reserve(ckpt.clusters.size());
  for (const CheckpointClusterState& state : ckpt.clusters) {
    Pst pst(db_.alphabet().size(), options_.pst);
    std::istringstream blob(state.pst_blob);
    CLUSEQ_RETURN_NOT_OK(LoadPst(blob, &pst));
    std::vector<size_t> members(state.members.begin(), state.members.end());
    std::vector<std::pair<size_t, Cluster::Segment>> contributions;
    contributions.reserve(state.contributions.size());
    for (const auto& contrib : state.contributions) {
      contributions.emplace_back(
          static_cast<size_t>(contrib.seq_index),
          Cluster::Segment{static_cast<size_t>(contrib.begin),
                           static_cast<size_t>(contrib.end)});
    }
    Cluster cluster(state.id, db_.alphabet().size(), options_.pst);
    cluster.RestoreForResume(std::move(pst), state.seed_index,
                             std::move(members), std::move(contributions));
    clusters_.push_back(std::move(cluster));
  }
  bank_ = FrozenBank();
  bank_.set_signature_budget_bytes(options_.signature_budget_bytes);
  next_cluster_id_ = ckpt.next_cluster_id;
  log_t_ = ckpt.log_t;
  joined_.clear();
  prev_best_cluster_ = ckpt.prev_best_cluster;
  best_log_sim_ = ckpt.best_log_sim;
  unclustered_.assign(ckpt.unclustered.begin(), ckpt.unclustered.end());
  prev_new_ = static_cast<size_t>(ckpt.prev_new);
  prev_consolidated_ = static_cast<size_t>(ckpt.prev_consolidated);
  adjuster->RestoreFrozen(ckpt.adjuster_frozen);
  *prev_fingerprint = ckpt.prev_fingerprint;
  *have_prev_fingerprint = ckpt.have_prev_fingerprint;
  return Status::OK();
}

Status CluseqClusterer::Run(ClusteringResult* result) {
  CLUSEQ_RETURN_NOT_OK(options_.Validate());
  CLUSEQ_TRACE_SPAN("cluseq.run");
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Get();
  report_ = std::make_unique<obs::RunReport>();
  report_->options = options_;
  report_->num_sequences = db_.size();
  report_->alphabet_size = db_.alphabet().size();
  report_->effective_threads = options_.num_threads;
  // Opens the process-wide counter set on first run; also publishes the
  // perf.available gauge (and the one unavailability warning) up front.
  report_->perf_available = obs::PerfCounterSet::Process().available();
  report_->baseline_metrics = registry.Snapshot();
  Stopwatch run_timer;
  *result = ClusteringResult{};
  const size_t n = db_.size();
  result->best_cluster.assign(n, -1);
  result->best_log_sim.assign(n, kNegInf);
  if (n == 0) {
    report_->final_metrics = registry.Snapshot();
    return Status::OK();
  }

  ThresholdAdjuster adjuster(options_.histogram_buckets, /*min_log_t=*/0.0);
  std::vector<uint64_t> prev_fingerprint;
  bool have_prev_fingerprint = false;

  const CancellationToken* cancel = options_.cancellation;
  const bool checkpointing =
      !options_.checkpoint_dir.empty() && options_.checkpoint_every > 0;
  // Fixed per run: the prefilter needs the batched arena and deferred
  // joins; a live threshold adjuster no longer disables it — while the
  // adjuster moves t, the scan targets the censored floor
  // log t − adjust_bound_window and the adjuster histograms only scores at
  // or above that floor, which the prefilter keeps exact.
  prefilter_active_ = options_.prefilter && options_.batched_scan &&
                      !options_.within_scan_updates;
  run_prefilter_pairs_ = 0;
  run_prefilter_skipped_ = 0;
  run_prefilter_early_exits_ = 0;
  run_prefilter_l15_ = 0;
  run_prefilter_checkpoints_ = 0;
  phase_perf_.TakePhases();  // Drop samples a prior (aborted) run left over.

  size_t start_iteration = 0;
  if (options_.resume) {
    ClustererCheckpoint ckpt;
    std::string loaded_path;
    Status load = LoadLatestCheckpoint(options_.checkpoint_dir,
                                       options_.checkpoint_strict, &ckpt,
                                       &loaded_path);
    if (load.ok()) {
      CLUSEQ_RETURN_NOT_OK(RestoreFromCheckpoint(
          ckpt, &adjuster, &prev_fingerprint, &have_prev_fingerprint));
      start_iteration = static_cast<size_t>(ckpt.iteration);
      result->resumed_from_checkpoint = true;
      static obs::Counter& resumes =
          registry.GetCounter("checkpoint.resumes");
      resumes.Increment();
      if (options_.verbose) {
        CLUSEQ_LOG(kInfo) << "resumed from " << loaded_path
                          << " at iteration " << start_iteration;
      }
    } else if (load.IsNotFound()) {
      // Nothing to resume from is a fresh start, not an error — the very
      // first (later-killed) run of a checkpointed job hits this path.
      CLUSEQ_LOG(kWarning) << "no checkpoint to resume from in "
                           << options_.checkpoint_dir
                           << "; starting fresh";
    } else {
      return load;
    }
  }

  if (!result->resumed_from_checkpoint) {
    background_ = BackgroundModel::FromDatabase(db_);
    rng_ = Rng(options_.rng_seed);
    clusters_.clear();
    bank_ = FrozenBank();
    bank_.set_signature_budget_bytes(options_.signature_budget_bytes);
    next_cluster_id_ = 0;
    log_t_ = options_.auto_initial_threshold
                 ? EstimateInitialLogThreshold()
                 : std::log(options_.similarity_threshold);
    if (options_.verbose) {
      CLUSEQ_LOG(kInfo) << "initial log t = " << log_t_;
    }
    joined_.clear();
    prev_best_cluster_.clear();
    best_log_sim_.clear();
    unclustered_.resize(n);
    for (size_t i = 0; i < n; ++i) unclustered_[i] = i;
    prev_new_ = 0;
    prev_consolidated_ = 0;
  }

  // Iteration-boundary bookkeeping for cancellation and checkpointing.
  // `boundary` is a cheap snapshot of the last *completed* iteration's
  // clustering — the only state an interrupted run may report, since the
  // live members/joins are torn mid-iteration. `pending_blob` is the
  // encoded checkpoint of that same boundary, written to disk on the
  // checkpoint_every cadence and flushed unconditionally on cancellation.
  // When neither a token nor checkpointing is configured, none of this
  // runs — a plain Run() costs nothing extra.
  struct BoundarySnapshot {
    uint64_t iteration = 0;
    double log_t = 0.0;
    std::vector<std::vector<size_t>> members;
    std::vector<int32_t> best_cluster;
    std::vector<double> best_log_sim;
    size_t num_unclustered = 0;
  };
  BoundarySnapshot boundary;
  std::string pending_blob;
  uint64_t pending_iteration = 0;
  bool have_pending = false;
  uint64_t last_saved_iteration = start_iteration;
  bool have_saved = result->resumed_from_checkpoint;
  size_t checkpoint_saves = 0;
  static obs::Gauge& save_seconds_gauge =
      registry.GetGauge("checkpoint.save_seconds");

  const auto cancelled = [&]() {
    return cancel != nullptr && cancel->Cancelled();
  };
  const auto capture_boundary = [&](uint64_t iteration) -> Status {
    if (cancel != nullptr || checkpointing) {
      boundary.iteration = iteration;
      boundary.log_t = log_t_;
      boundary.members.clear();
      boundary.members.reserve(clusters_.size());
      for (const Cluster& c : clusters_) boundary.members.push_back(c.members());
      boundary.best_cluster = prev_best_cluster_;
      boundary.best_log_sim = best_log_sim_;
      boundary.num_unclustered = unclustered_.size();
    }
    if (checkpointing) {
      ClustererCheckpoint ckpt = BuildCheckpoint(
          iteration, adjuster, prev_fingerprint, have_prev_fingerprint);
      CLUSEQ_RETURN_NOT_OK(EncodeCheckpoint(ckpt, &pending_blob));
      pending_iteration = iteration;
      have_pending = true;
    }
    return Status::OK();
  };
  const auto flush_pending = [&]() -> Status {
    if (!have_pending ||
        (have_saved && pending_iteration <= last_saved_iteration)) {
      return Status::OK();
    }
    CLUSEQ_TRACE_SPAN("cluseq.checkpoint_save");
    Stopwatch save_timer;
    CLUSEQ_RETURN_NOT_OK(WriteCheckpointRetainTwo(
        options_.checkpoint_dir, pending_iteration, pending_blob));
    save_seconds_gauge.Set(save_timer.ElapsedSeconds());
    last_saved_iteration = pending_iteration;
    have_saved = true;
    ++checkpoint_saves;
    return Status::OK();
  };

  // The pre-loop boundary: established state (threshold estimate, RNG)
  // before iteration 1 runs, so a kill during the first iteration resumes
  // here instead of repeating the estimation from scratch.
  CLUSEQ_RETURN_NOT_OK(capture_boundary(start_iteration));
  if (checkpointing && !result->resumed_from_checkpoint) {
    have_saved = false;  // Nothing on disk yet: always write boundary 0.
    CLUSEQ_RETURN_NOT_OK(flush_pending());
  }

  static obs::Counter& iteration_counter =
      registry.GetCounter("cluseq.iterations");
  static obs::Counter& generated_counter =
      registry.GetCounter("cluseq.clusters_generated");
  static obs::Counter& consolidated_counter =
      registry.GetCounter("cluseq.clusters_consolidated");
  static obs::Gauge& log_threshold_gauge =
      registry.GetGauge("cluseq.log_threshold");
  static obs::Gauge& clusters_gauge = registry.GetGauge("cluseq.clusters");
  static obs::Gauge& unclustered_gauge =
      registry.GetGauge("cluseq.unclustered");
  static const std::vector<double> iteration_bounds =
      obs::ExponentialBounds(1e-3, 4.0, 12);
  static obs::Histogram& iteration_seconds_hist = registry.GetHistogram(
      "cluseq.iteration_seconds", std::span<const double>(iteration_bounds));
  // Per-iteration pruning is the delta of the cumulative pst.nodes_pruned
  // counter (per-tree counters reset when trees are rebuilt, the registry
  // counter never does).
  obs::Counter& pruned_counter = registry.GetCounter("pst.nodes_pruned");
  log_threshold_gauge.Set(log_t_);

  bool interrupted = false;
  size_t iteration = start_iteration;
  while (iteration < options_.max_iterations) {
    if (cancelled()) {
      interrupted = true;
      break;
    }
    ++iteration;
    CLUSEQ_TRACE_SPAN("cluseq.iteration");
    Stopwatch timer;
    refrozen_this_iter_ = 0;
    scan_seconds_this_iter_ = 0.0;
    join_seconds_this_iter_ = 0.0;
    prefilter_pairs_this_iter_ = 0;
    prefilter_skipped_this_iter_ = 0;
    prefilter_early_exits_this_iter_ = 0;
    prefilter_l15_this_iter_ = 0;
    prefilter_checkpoints_this_iter_ = 0;
    // While the §4.6 adjuster is live its histogram must see exact scores,
    // so the scan targets the censored floor log t − W instead of log t:
    // everything at or above the floor comes back exact (the adjuster and
    // the join pass both censor/compare against values no lower), and
    // scores below it are censored identically in prefiltered and
    // exhaustive runs, keeping the adjuster trajectory bit-for-bit
    // independent of the prefilter. Once frozen (or with adjustment off)
    // the target snaps back to log t itself.
    const bool adjuster_live =
        options_.adjust_threshold && !adjuster.frozen();
    scan_target_ = adjuster_live ? log_t_ - options_.adjust_bound_window
                                 : log_t_;
    const uint64_t pruned_before = pruned_counter.Value();

    Stopwatch seed_timer;
    size_t generated = 0;
    {
      CLUSEQ_TRACE_SPAN("cluseq.seed");
      obs::PerfScope perf_scope = phase_perf_.Sample("seed");
      if (options_.rebuild_each_iteration) RebuildClusterPsts();
      const size_t planned = PlanNewClusters(iteration);
      const size_t before = clusters_.size();
      GenerateNewClusters(planned);
      generated = clusters_.size() - before;
    }
    const double seed_seconds = seed_timer.ElapsedSeconds();

    // Phase boundaries are the cancellation points: state is consistent
    // here, and abandoning the rest of the iteration is safe because the
    // reported result and the flushed checkpoint both come from the last
    // completed iteration's boundary (resume replays this one).
    if (cancelled()) {
      interrupted = true;
      break;
    }

    Recluster();

    if (cancelled()) {
      interrupted = true;
      break;
    }

    Stopwatch consolidate_timer;
    size_t consolidated = 0;
    {
      CLUSEQ_TRACE_SPAN("cluseq.consolidate");
      obs::PerfScope perf_scope = phase_perf_.Sample("consolidate");
      consolidated = Consolidate();
      RebuildMembershipViews();
    }
    const double consolidate_seconds = consolidate_timer.ElapsedSeconds();

    if (cancelled()) {
      interrupted = true;
      break;
    }

    const double log_t_before = log_t_;
    {
      CLUSEQ_TRACE_SPAN("cluseq.adjust_t");
      obs::PerfScope perf_scope = phase_perf_.Sample("adjust_t");
      if (adjuster_live) {
        // The censor floor is exactly this iteration's scan target: the
        // prefilter guarantees every score at or above it is exact, and
        // exhaustive runs apply the same floor, so both see an identical
        // filtered multiset and walk identical threshold trajectories.
        ThresholdUpdate update =
            adjuster.Adjust(all_log_sims_, log_t_, scan_target_);
        if (update.adjusted) log_t_ = update.new_log_t;
      }
    }
    const bool threshold_stable =
        std::abs(log_t_ - log_t_before) <
        0.01 * std::max(1.0, std::abs(log_t_before));

    IterationStats stats;
    stats.iteration = iteration;
    stats.new_clusters = generated;
    stats.consolidated = consolidated;
    stats.clusters_after = clusters_.size();
    stats.unclustered = unclustered_.size();
    stats.log_threshold = log_t_;
    stats.seconds = timer.ElapsedSeconds();
    stats.refrozen_clusters = refrozen_this_iter_;
    stats.scan_seconds = scan_seconds_this_iter_;
    stats.seed_seconds = seed_seconds;
    stats.join_seconds = join_seconds_this_iter_;
    stats.consolidate_seconds = consolidate_seconds;
    stats.prefilter_dp_early_exits = prefilter_early_exits_this_iter_;
    stats.prefilter_l15_pruned = prefilter_l15_this_iter_;
    stats.prefilter_checkpoints = prefilter_checkpoints_this_iter_;
    stats.phase_perf = phase_perf_.TakePhases();
    if (prefilter_pairs_this_iter_ > 0) {
      stats.prefilter_skip_ratio =
          static_cast<double>(prefilter_skipped_this_iter_) /
          static_cast<double>(prefilter_pairs_this_iter_);
    }
    run_prefilter_pairs_ += prefilter_pairs_this_iter_;
    run_prefilter_skipped_ += prefilter_skipped_this_iter_;
    run_prefilter_early_exits_ += prefilter_early_exits_this_iter_;
    run_prefilter_l15_ += prefilter_l15_this_iter_;
    run_prefilter_checkpoints_ += prefilter_checkpoints_this_iter_;
    size_t pst_bytes_total = 0;
    for (const Cluster& c : clusters_) {
      stats.pst_nodes_total += c.pst().NumNodes();
      pst_bytes_total += c.pst().ApproxMemoryBytes();
    }
    stats.pst_pruned_total =
        static_cast<size_t>(pruned_counter.Value() - pruned_before);
    static obs::Gauge& live_nodes_gauge =
        registry.GetGauge("pst.live_nodes");
    static obs::Gauge& approx_bytes_gauge =
        registry.GetGauge("pst.approx_bytes");
    live_nodes_gauge.Set(static_cast<double>(stats.pst_nodes_total));
    approx_bytes_gauge.Set(static_cast<double>(pst_bytes_total));
    result->iteration_stats.push_back(stats);

    iteration_counter.Increment();
    generated_counter.Add(generated);
    consolidated_counter.Add(consolidated);
    log_threshold_gauge.Set(log_t_);
    clusters_gauge.Set(static_cast<double>(clusters_.size()));
    unclustered_gauge.Set(static_cast<double>(unclustered_.size()));
    iteration_seconds_hist.Observe(stats.seconds);
    report_->iterations.push_back(stats);
    report_->iteration_metrics.push_back(registry.Snapshot());

    if (options_.verbose) {
      CLUSEQ_LOG(kInfo) << "iteration " << iteration << ": +" << generated
                        << " new, -" << consolidated << " consolidated, "
                        << clusters_.size() << " clusters, "
                        << unclustered_.size() << " unclustered, log t = "
                        << log_t_ << ", scan " << stats.scan_seconds
                        << "s, refroze " << stats.refrozen_clusters
                        << " clusters, " << stats.pst_nodes_total
                        << " pst nodes (" << stats.pst_pruned_total
                        << " pruned), phases seed " << stats.seed_seconds
                        << "s / join " << stats.join_seconds
                        << "s / consolidate " << stats.consolidate_seconds
                        << "s, prefilter skip "
                        << 100.0 * stats.prefilter_skip_ratio << "% ("
                        << stats.prefilter_l15_pruned << " l15 pruned, "
                        << stats.prefilter_dp_early_exits
                        << " early exits, "
                        << stats.prefilter_checkpoints << " checkpoints)";
      // One perf line per iteration when the counters opened: the scan
      // phase dominates, so lead with its cycles and IPC.
      for (const obs::PhasePerf& phase : stats.phase_perf) {
        if (phase.phase != "scan" || phase.counters.empty()) continue;
        uint64_t cycles = 0;
        uint64_t instructions = 0;
        for (const auto& [name, value] : phase.counters) {
          if (name == "cycles") cycles = value;
          if (name == "instructions") instructions = value;
        }
        if (cycles > 0) {
          CLUSEQ_LOG(kInfo) << "iteration " << iteration << " scan perf: "
                            << cycles << " cycles, " << instructions
                            << " instructions (IPC "
                            << (static_cast<double>(instructions) /
                                static_cast<double>(cycles))
                            << "), " << phase.major_faults
                            << " major faults, rss " << phase.maxrss_kb
                            << " KB";
        }
      }
    }

    std::vector<uint64_t> fingerprint = MembershipFingerprint();
    if (have_prev_fingerprint && fingerprint == prev_fingerprint &&
        generated == consolidated && threshold_stable) {
      break;  // Fixed point: same clusters, same memberships, stable t.
    }
    prev_fingerprint = std::move(fingerprint);
    have_prev_fingerprint = true;
    prev_new_ = generated;
    prev_consolidated_ = consolidated;

    // Iteration boundary: everything the next iteration consumes is now in
    // place, so snapshot it (and encode the checkpoint) before any of it
    // is touched again. Disk writes follow the checkpoint_every cadence;
    // the in-memory encode happens every boundary so a later cancellation
    // can flush the newest state.
    CLUSEQ_RETURN_NOT_OK(capture_boundary(iteration));
    if (checkpointing && iteration % options_.checkpoint_every == 0) {
      CLUSEQ_RETURN_NOT_OK(flush_pending());
    }
  }

  if (interrupted) {
    // The live members/joins may be torn mid-iteration; report the last
    // completed iteration's boundary instead, and flush its checkpoint so
    // a resumed run replays the abandoned iteration. The result is exactly
    // what Run() returned after that iteration — never a partial one.
    if (checkpointing) CLUSEQ_RETURN_NOT_OK(flush_pending());
    result->interrupted = true;
    result->iterations = static_cast<size_t>(boundary.iteration);
    result->final_log_threshold = boundary.log_t;
    result->num_unclustered = boundary.num_unclustered;
    result->clusters.reserve(boundary.members.size());
    for (const std::vector<size_t>& members : boundary.members) {
      std::vector<size_t> sorted = members;
      std::sort(sorted.begin(), sorted.end());
      result->clusters.push_back(std::move(sorted));
    }
    if (!boundary.best_cluster.empty()) {
      result->best_cluster = boundary.best_cluster;
      result->best_log_sim = boundary.best_log_sim;
    }
    bank_ = FrozenBank();  // Live trees are torn; never serve Classify().
    bank_.set_signature_budget_bytes(options_.signature_budget_bytes);
  } else {
    result->iterations = iteration;
    result->final_log_threshold = log_t_;
    result->num_unclustered = unclustered_.size();
    result->clusters.reserve(clusters_.size());
    for (const Cluster& c : clusters_) {
      std::vector<size_t> members = c.members();
      std::sort(members.begin(), members.end());
      result->clusters.push_back(std::move(members));
    }
    if (!prev_best_cluster_.empty()) {
      result->best_cluster = prev_best_cluster_;
      result->best_log_sim = best_log_sim_;
    }
    // Snapshot the final summaries so Classify() runs on compiled automata
    // (one banked interleaved scan when batched_scan is on).
    RefreshFrozen();
    if (options_.batched_scan) {
      bank_.Assemble(Snapshots());
    } else {
      bank_ = FrozenBank();
      bank_.set_signature_budget_bytes(options_.signature_budget_bytes);
    }
  }

  report_->num_clusters = result->num_clusters();
  report_->num_unclustered = result->num_unclustered;
  report_->total_iterations = result->iterations;
  report_->final_log_threshold = result->final_log_threshold;
  report_->total_seconds = run_timer.ElapsedSeconds();
  report_->prefilter_enabled = prefilter_active_;
  report_->prefilter_early_exits = run_prefilter_early_exits_;
  report_->prefilter_skip_ratio =
      run_prefilter_pairs_ > 0
          ? static_cast<double>(run_prefilter_skipped_) /
                static_cast<double>(run_prefilter_pairs_)
          : 0.0;
  report_->prefilter_l15_ratio =
      run_prefilter_pairs_ > 0
          ? static_cast<double>(run_prefilter_l15_) /
                static_cast<double>(run_prefilter_pairs_)
          : 0.0;
  report_->prefilter_checkpoints = run_prefilter_checkpoints_;
  report_->prefilter_sig_tier =
      bank_.empty() ? "" : bank_.signature_tier_name();
  report_->checkpoint_enabled = checkpointing;
  report_->checkpoint_saves = checkpoint_saves;
  report_->checkpoint_last_iteration =
      have_saved ? static_cast<size_t>(last_saved_iteration) : 0;
  report_->resumed_from_checkpoint = result->resumed_from_checkpoint;
  report_->interrupted = result->interrupted;
  report_->final_metrics = registry.Snapshot();
  return Status::OK();
}

int32_t CluseqClusterer::Classify(std::span<const SymbolId> symbols,
                                  double* log_sim) const {
  double best = kNegInf;
  int32_t best_pos = -1;
  const size_t kc = clusters_.size();
  if (kc > 0 && options_.batched_scan && bank_.num_models() == kc) {
    if (options_.prefilter) {
      // Argmax-mode pruned scan: exact best value and the same
      // smallest-index tie-break as the exhaustive loop below.
      ScanPrefilter prefilter(&bank_, options_.prefilter_prefix);
      best_pos = prefilter.BestModel(symbols, &best);
      if (log_sim != nullptr) *log_sim = best;
      if (best_pos >= 0 && best < log_t_) best_pos = -1;
      return best_pos;
    }
    const std::vector<SimilarityResult> sims =
        bank_.ScanAll(symbols);
    for (size_t ci = 0; ci < kc; ++ci) {
      if (sims[ci].log_sim > best) {
        best = sims[ci].log_sim;
        best_pos = static_cast<int32_t>(ci);
      }
    }
    if (log_sim != nullptr) *log_sim = best;
    if (best_pos >= 0 && best < log_t_) best_pos = -1;
    return best_pos;
  }
  for (size_t ci = 0; ci < kc; ++ci) {
    double s =
        clusters_[ci].frozen_fresh()
            ? ComputeSimilarity(*clusters_[ci].frozen(), symbols).log_sim
            : ComputeSimilarity(clusters_[ci].pst(), background_, symbols)
                  .log_sim;
    if (s > best) {
      best = s;
      best_pos = static_cast<int32_t>(ci);
    }
  }
  if (log_sim != nullptr) *log_sim = best;
  if (best_pos >= 0 && best < log_t_) best_pos = -1;
  return best_pos;
}

Status RunCluseq(const SequenceStore& db, const CluseqOptions& options,
                 ClusteringResult* result) {
  CluseqClusterer clusterer(db, options);
  return clusterer.Run(result);
}

}  // namespace cluseq
