// Crash-safe checkpointing of a CLUSEQ clustering run (DESIGN.md §16).
//
// A checkpoint captures the complete cross-iteration state of
// CluseqClusterer at an iteration boundary — threshold, RNG, cluster
// trees/members/contributions, the previous iteration's fingerprint — so a
// run killed at ANY point (including mid-save) can resume and produce a
// final clustering bit-for-bit identical to an uninterrupted run. Only
// state that feeds the next iteration is stored; everything derivable
// (background model, frozen snapshots, the scan bank) is recomputed on
// resume, which keeps files small and makes snapshot/tree skew impossible.
//
// File format `cluseq.ckpt.v1` (little-endian, one file per boundary):
//
//   magic "CKPT" | u32 version | u64 file_bytes | u32 section_count |
//   u32 flags | section table [2 × {u64 offset, u64 size, u32 crc32c,
//   u32 pad}] | u32 header_crc32c        (76-byte header)
//   section 0: meta  — identity fingerprints + build string
//   section 1: state — the iteration-boundary algorithm state
//
// Durability model (same bar as the .sqdb and PST formats, DESIGN.md §11):
// files are written via WriteFileAtomic, so a torn save never becomes
// visible at a final path; the header CRC is verified before any field is
// parsed and each section CRC before that section is decoded; every count
// is capped by the bytes that could plausibly back it before any
// allocation; the exact size equation rejects truncation and trailing
// junk. Any mismatch is Status::Corruption and bumps
// persistence.corruption_detected. The directory keeps the newest TWO
// checkpoints (WriteCheckpointRetainTwo), so a crash mid-save — which can
// at worst orphan a .tmp file — always leaves the previous complete
// checkpoint loadable.
//
// Identity: meta records fingerprints of the algorithmic options and of
// the corpus (SequenceStore::ContentFingerprint — strengthened by the
// .sqdb data CRC for on-disk stores). Resume against a different corpus or
// different algorithmic options fails with FailedPrecondition instead of
// silently producing garbage. Pure performance switches (num_threads,
// batched_scan, prefilter, verbose) are deliberately NOT fingerprinted:
// results are bit-for-bit identical across them, so a run may resume at a
// different thread count.

#ifndef CLUSEQ_CORE_CHECKPOINT_H_
#define CLUSEQ_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluseq.h"
#include "util/rng.h"
#include "util/status.h"

namespace cluseq {

/// Serialized form of one cluster's cross-iteration state.
struct CheckpointClusterState {
  /// One counted segment of a contributing sequence (Cluster::Segment plus
  /// the sequence it belongs to). Stored sorted by seq_index so the encoded
  /// bytes are a canonical function of the cluster state.
  struct Contribution {
    uint64_t seq_index = 0;
    uint64_t begin = 0;
    uint64_t end = 0;
  };

  uint32_t id = 0;
  int64_t seed_index = -1;
  std::vector<uint64_t> members;  ///< In the cluster's stored order.
  std::vector<Contribution> contributions;
  std::string pst_blob;  ///< SavePst stream (self-checksummed).
};

/// Complete iteration-boundary state of a clustering run.
struct ClustererCheckpoint {
  // --- meta section: identity -----------------------------------------
  uint64_t options_fingerprint = 0;
  uint64_t corpus_fingerprint = 0;
  uint64_t num_sequences = 0;
  uint64_t total_symbols = 0;
  std::string build;  ///< BuildVersionString() of the writer (≤ 256 bytes).

  // --- state section: the algorithm at an iteration boundary ----------
  /// Number of completed iterations (0 = initialized, loop not yet run).
  uint64_t iteration = 0;
  double log_t = 0.0;
  uint32_t next_cluster_id = 0;
  uint64_t prev_new = 0;
  uint64_t prev_consolidated = 0;
  bool adjuster_frozen = false;
  bool have_prev_fingerprint = false;
  std::vector<uint64_t> prev_fingerprint;
  Rng::State rng;
  std::vector<int32_t> prev_best_cluster;  ///< One per sequence, or empty.
  std::vector<double> best_log_sim;        ///< One per sequence, or empty.
  std::vector<uint64_t> unclustered;
  std::vector<CheckpointClusterState> clusters;
};

/// Fingerprint of the algorithmic CluseqOptions fields (everything that can
/// change the clustering; perf switches excluded — see the header comment).
uint64_t FingerprintOptions(const CluseqOptions& options);

/// Serializes `ckpt` into the cluseq.ckpt.v1 byte layout.
Status EncodeCheckpoint(const ClustererCheckpoint& ckpt, std::string* out);

/// Parses and fully validates a cluseq.ckpt.v1 byte string. Never partial:
/// on any failure `*out` is untouched and the status is Corruption.
Status DecodeCheckpoint(std::string_view bytes, ClustererCheckpoint* out);

/// Reads + decodes one checkpoint file.
Status LoadCheckpointFile(const std::string& path, ClustererCheckpoint* out);

/// Canonical file path for the checkpoint at `iteration` inside `dir`.
std::string CheckpointFilePath(const std::string& dir, uint64_t iteration);

/// Checkpoint files in `dir`, newest (highest iteration) first. Files not
/// matching the ckpt_<iter>.ckpt pattern are ignored. NotFound when the
/// directory exists but holds no checkpoints (or does not exist).
Status ListCheckpointFiles(const std::string& dir,
                           std::vector<std::string>* newest_first);

/// Atomically writes the encoded checkpoint for `iteration` into `dir`
/// (creating it if needed), then prunes all but the newest two files.
/// Records checkpoint.bytes_written and fires the test hook on success.
Status WriteCheckpointRetainTwo(const std::string& dir, uint64_t iteration,
                                std::string_view encoded);

/// Loads the newest loadable checkpoint from `dir`. A corrupt newest file
/// falls back to the previous one with a kWarning log (strict=false) or
/// fails with the corruption status (strict=true). NotFound when `dir` has
/// no checkpoint files at all. `loaded_path` (optional) receives the file
/// actually loaded.
Status LoadLatestCheckpoint(const std::string& dir, bool strict,
                            ClustererCheckpoint* out,
                            std::string* loaded_path = nullptr);

/// Test hook: called after each successful WriteCheckpointRetainTwo with
/// the iteration and final path — the chaos harness SIGKILLs itself here
/// to probe every save boundary. Pass nullptr to clear. Not thread-safe;
/// set before the run starts.
using CheckpointSaveHook = void (*)(uint64_t iteration,
                                    const std::string& path);
void SetCheckpointSaveHookForTest(CheckpointSaveHook hook);

}  // namespace cluseq

#endif  // CLUSEQ_CORE_CHECKPOINT_H_
