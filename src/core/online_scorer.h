// Online similarity scoring for streaming sequences.
//
// The §4.3 dynamic program is a left-to-right scan with O(1) state per
// model: Y (best segment ending *now*) and Z (best segment so far). That
// makes it ideal for monitoring unbounded event streams: push one symbol at
// a time and read, per cluster model, the running log SIM — no need to
// re-score the whole history. Each model is held as a compiled FrozenPst
// snapshot, so per-stream state is a single automaton state instead of a
// context window: Push() is one transition plus one table load per model,
// with no context re-walk and no per-symbol allocation.
//
// Typical use (online anomaly detection over learned behavior clusters):
//
//   OnlineScorer scorer(background);
//   scorer.AddModel(&cluster_pst_a);
//   scorer.AddModel(&cluster_pst_b);
//   for (SymbolId s : stream) {
//     scorer.Push(s);
//     if (scorer.BestScore().log_sim < alert_threshold) Alert();
//   }
//
// Internally the registered snapshots are packed into a FrozenBank, so one
// Push() is a single interleaved StepAll over all k models (flat parallel
// state arrays, one arena) rather than k independent automaton steps. Model
// row state is bank-local but survives AddModel(): appending a model
// reassembles the arena without disturbing the earlier models' rows.

#ifndef CLUSEQ_CORE_ONLINE_SCORER_H_
#define CLUSEQ_CORE_ONLINE_SCORER_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <vector>

#include "pst/frozen_bank.h"
#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "seq/background_model.h"
#include "seq/sequence_store.h"

namespace cluseq {

class OnlineScorer {
 public:
  struct Score {
    /// Running log SIM (max over all segments seen so far).
    double log_sim = -std::numeric_limits<double>::infinity();
    /// Best log ratio of a segment ending at the current position — a
    /// *local* signal that decays quickly when the stream leaves the
    /// model's distribution, unlike the monotone log_sim.
    double current_log_sim = 0.0;
    int32_t model = -1;
  };

  /// `background` must outlive the scorer.
  explicit OnlineScorer(const BackgroundModel& background);

  /// Registers a model by compiling a snapshot of `pst` against the
  /// scorer's background; later changes to the live tree are not seen.
  /// Returns the model's index.
  size_t AddModel(const Pst* pst);

  /// Registers an already-compiled snapshot (shared across scorers and
  /// streams — snapshots are immutable). Must have been compiled against
  /// the same background distribution this scorer was constructed with.
  size_t AddModel(std::shared_ptr<const FrozenPst> model);

  size_t num_models() const { return models_.size(); }

  /// Consumes one symbol, updating every model's running scores. O(k): one
  /// automaton transition and one table load per model.
  void Push(SymbolId symbol);

  /// Symbols consumed since construction or the last Reset().
  size_t position() const { return position_; }

  /// Running scores of model `index`.
  Score ScoreOf(size_t index) const;

  /// The model with the highest running log SIM (model = -1 when empty).
  Score BestScore() const;

  /// Like BestScore but on the decaying current-segment signal; this is the
  /// one to monitor for drift/anomaly alerts.
  Score BestCurrentScore() const;

  /// Scores every record of `store` independently (each from a fresh
  /// automaton state — unrelated to the streaming Push() position) against
  /// all registered models with one interleaved banked scan per record,
  /// fanned out over `num_threads` (0 = auto). out[i] is record i's
  /// best-scoring model, model = -1 when none are registered. Works for any
  /// SequenceStore, so a classify run can score an mmap-backed .sqdb corpus
  /// without materializing it. The streaming state is untouched.
  /// `prefilter` prunes each record's scan with ScanPrefilter's admissible
  /// bounds; outputs are bit-for-bit identical either way. (The streaming
  /// Push()/StepAll path is inherently exhaustive — every model's running
  /// state must advance on every symbol — so only batch scoring prunes.)
  void BatchClassify(const SequenceStore& store, size_t num_threads,
                     std::vector<Score>* out, bool prefilter = true);

  /// Clears stream state (automaton states and scores), keeping the models.
  void Reset();

 private:
  /// Rebuilds the bank when models were added since the last Push. Cheap
  /// when nothing changed; an append rewrites only the new models' rows.
  void EnsureBank();

  const BackgroundModel& background_;
  std::vector<std::shared_ptr<const FrozenPst>> models_;
  FrozenBank bank_;
  bool bank_stale_ = false;
  // Parallel per-model stream state consumed by FrozenBank::StepAll.
  // rows_ entries are model-local row offsets (state · alphabet), which is
  // why they stay valid across bank reassembly.
  std::vector<uint32_t> rows_;
  std::vector<double> y_;  // log of best segment ending at current position.
  std::vector<double> z_;  // running log SIM.
  std::vector<uint8_t> started_;
  size_t position_ = 0;
};

}  // namespace cluseq

#endif  // CLUSEQ_CORE_ONLINE_SCORER_H_
