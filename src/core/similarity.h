// Sequence-to-cluster similarity (paper §2 and §4.3).
//
// The similarity of a sequence σ = s_1…s_l to a cluster S is
//     SIM_S(σ) = max over segments s_j…s_i of
//                Π_{p=j..i} P_S(s_p | s_1…s_{p-1}) / p(s_p),
// the best likelihood ratio of any contiguous segment against the memoryless
// background model. Each position's conditional probability is looked up at
// the prediction node of its full preceding context (the CPD "carries
// through" segment boundaries, exactly as in the paper's Table 1 example).
//
// Computation is the single-scan dynamic program of §4.3:
//     X_i = P_S(s_i | s_1…s_{i-1}) / p(s_i)
//     Y_i = max(Y_{i-1} · X_i, X_i)      (best segment ending at i)
//     Z_i = max(Z_{i-1}, Y_i)            (best segment ending ≤ i)
// run in log space: the paper multiplies raw ratios, which over- or
// under-flows IEEE doubles within a few hundred positions, so we work with
// log X_i and report log SIM. Thresholds compare as log SIM ≥ log t.

#ifndef CLUSEQ_CORE_SIMILARITY_H_
#define CLUSEQ_CORE_SIMILARITY_H_

#include <cstddef>
#include <span>

#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "seq/background_model.h"
#include "seq/sequence.h"

namespace cluseq {

struct SimilarityResult {
  /// log SIM_S(σ); -inf for an empty sequence.
  double log_sim = 0.0;
  /// Maximizing segment [begin, end) of σ.
  size_t best_begin = 0;
  size_t best_end = 0;

  bool Exceeds(double log_threshold) const { return log_sim >= log_threshold; }
};

/// log X_i = log [P̂(s_i | s_1…s_{i-1}) / p(s_i)], the per-position term of
/// the §4.3 recurrences. Shared by the DP, the brute-force reference, and
/// the threshold estimator so the paths cannot drift apart.
double ContextLogRatio(const Pst& pst, const BackgroundModel& background,
                       std::span<const SymbolId> symbols, size_t i);

/// Computes SIM between `symbols` and the cluster summarized by `pst`,
/// with `background` supplying the memoryless p(s) probabilities.
/// O(l · L) where L is the PST depth bound: every position re-walks the
/// trie from the root. Reference path; prefer the FrozenPst overload on
/// any hot loop.
SimilarityResult ComputeSimilarity(const Pst& pst,
                                   const BackgroundModel& background,
                                   std::span<const SymbolId> symbols);

inline SimilarityResult ComputeSimilarity(const Pst& pst,
                                          const BackgroundModel& background,
                                          const Sequence& seq) {
  return ComputeSimilarity(pst, background,
                           std::span<const SymbolId>(seq.symbols()));
}

/// Same DP over a compiled scoring snapshot: an O(l) automaton scan with
/// amortized O(1) per symbol (one transition + one table load), no root
/// walks. The background ratios are baked into the snapshot. Produces
/// bit-for-bit the results of the live overload on the frozen tree.
SimilarityResult ComputeSimilarity(const FrozenPst& pst,
                                   std::span<const SymbolId> symbols);

inline SimilarityResult ComputeSimilarity(const FrozenPst& pst,
                                          const Sequence& seq) {
  return ComputeSimilarity(pst, std::span<const SymbolId>(seq.symbols()));
}

/// Reference O(l^2) implementation that evaluates every segment explicitly.
/// Used by tests to validate the DP; not for production use.
SimilarityResult ComputeSimilarityBruteForce(
    const Pst& pst, const BackgroundModel& background,
    std::span<const SymbolId> symbols);

}  // namespace cluseq

#endif  // CLUSEQ_CORE_SIMILARITY_H_
