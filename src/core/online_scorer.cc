#include "core/online_scorer.h"

#include <algorithm>
#include <utility>

namespace cluseq {

OnlineScorer::OnlineScorer(const BackgroundModel& background)
    : background_(background) {}

size_t OnlineScorer::AddModel(const Pst* pst) {
  return AddModel(std::make_shared<const FrozenPst>(*pst, background_));
}

size_t OnlineScorer::AddModel(std::shared_ptr<const FrozenPst> model) {
  ModelState state;
  state.model = std::move(model);
  models_.push_back(std::move(state));
  return models_.size() - 1;
}

void OnlineScorer::Push(SymbolId symbol) {
  for (ModelState& m : models_) {
    // log X_i straight from the snapshot: the automaton state already
    // encodes the relevant context, background ratio included.
    const double x = m.model->LogRatio(m.state, symbol);
    m.state = m.model->Step(m.state, symbol);
    if (!m.started || m.y + x < x) {
      m.y = x;  // Restart the running segment at this symbol.
    } else {
      m.y += x;
    }
    m.started = true;
    m.z = std::max(m.z, m.y);
  }
  ++position_;
}

OnlineScorer::Score OnlineScorer::ScoreOf(size_t index) const {
  const ModelState& m = models_[index];
  Score s;
  s.log_sim = m.z;
  s.current_log_sim = m.started ? m.y : 0.0;
  s.model = static_cast<int32_t>(index);
  return s;
}

OnlineScorer::Score OnlineScorer::BestScore() const {
  Score best;
  for (size_t i = 0; i < models_.size(); ++i) {
    Score s = ScoreOf(i);
    if (best.model < 0 || s.log_sim > best.log_sim) best = s;
  }
  return best;
}

OnlineScorer::Score OnlineScorer::BestCurrentScore() const {
  Score best;
  for (size_t i = 0; i < models_.size(); ++i) {
    Score s = ScoreOf(i);
    if (best.model < 0 || s.current_log_sim > best.current_log_sim) {
      best = s;
    }
  }
  return best;
}

void OnlineScorer::Reset() {
  position_ = 0;
  for (ModelState& m : models_) {
    m.state = FrozenPst::kRootState;
    m.y = 0.0;
    m.z = -std::numeric_limits<double>::infinity();
    m.started = false;
  }
}

}  // namespace cluseq
