#include "core/online_scorer.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "core/prefilter.h"
#include "obs/metrics.h"
#include "util/thread_pool.h"

namespace cluseq {

OnlineScorer::OnlineScorer(const BackgroundModel& background)
    : background_(background) {}

size_t OnlineScorer::AddModel(const Pst* pst) {
  return AddModel(std::make_shared<const FrozenPst>(*pst, background_));
}

size_t OnlineScorer::AddModel(std::shared_ptr<const FrozenPst> model) {
  models_.push_back(std::move(model));
  rows_.push_back(0);  // Model-local root row.
  y_.push_back(0.0);
  z_.push_back(-std::numeric_limits<double>::infinity());
  started_.push_back(0);
  bank_stale_ = true;
  return models_.size() - 1;
}

void OnlineScorer::EnsureBank() {
  if (!bank_stale_) return;
  // Appending models reuses the existing models' rows in place; the live
  // rows_ offsets are model-local and unaffected either way.
  bank_.Assemble(models_);
  bank_stale_ = false;
  static obs::Counter& rebuilds =
      obs::MetricsRegistry::Get().GetCounter("online_scorer.bank_rebuilds");
  rebuilds.Increment();
}

void OnlineScorer::Push(SymbolId symbol) {
  EnsureBank();
  static obs::Counter& push_symbols =
      obs::MetricsRegistry::Get().GetCounter("online_scorer.push_symbols");
  push_symbols.Increment();
  // One interleaved step over every model: log X_i straight from the
  // arena (the row already encodes the relevant context, background ratio
  // included), then the §4.3 restart-or-extend update per model lane.
  bank_.StepAll(symbol, rows_.data(), y_.data(), z_.data(),
                started_.data());
  ++position_;
}

OnlineScorer::Score OnlineScorer::ScoreOf(size_t index) const {
  Score s;
  s.log_sim = z_[index];
  s.current_log_sim = started_[index] ? y_[index] : 0.0;
  s.model = static_cast<int32_t>(index);
  return s;
}

OnlineScorer::Score OnlineScorer::BestScore() const {
  Score best;
  for (size_t i = 0; i < models_.size(); ++i) {
    Score s = ScoreOf(i);
    if (best.model < 0 || s.log_sim > best.log_sim) best = s;
  }
  return best;
}

OnlineScorer::Score OnlineScorer::BestCurrentScore() const {
  Score best;
  for (size_t i = 0; i < models_.size(); ++i) {
    Score s = ScoreOf(i);
    if (best.model < 0 || s.current_log_sim > best.current_log_sim) {
      best = s;
    }
  }
  return best;
}

void OnlineScorer::BatchClassify(const SequenceStore& store,
                                 size_t num_threads, std::vector<Score>* out,
                                 bool prefilter) {
  const size_t n = store.size();
  out->assign(n, Score{});
  if (models_.empty() || n == 0) return;
  EnsureBank();
  static obs::Counter& batch_records =
      obs::MetricsRegistry::Get().GetCounter("online_scorer.batch_records");
  batch_records.Add(n);
  num_threads = ResolveThreads(num_threads);
  const size_t k = models_.size();
  // Scan cost is linear in record length; weighted chunking keeps one long
  // record from parking the other workers.
  if (prefilter) {
    const ScanPrefilter bank_prefilter(&bank_);
    ParallelForWeighted(
        n, num_threads,
        [&store](size_t i) -> uint64_t { return store.Length(i); },
        [&](size_t i) {
          Score best;
          best.model = bank_prefilter.BestModel(store.Symbols(i),
                                                &best.log_sim);
          if (best.model < 0) {
            // Every model scored -inf; the exhaustive loop below still
            // reports model 0 (its seed), with that -inf score.
            best.model = 0;
            best.log_sim = -std::numeric_limits<double>::infinity();
          }
          best.current_log_sim = best.log_sim;
          (*out)[i] = best;
        });
    return;
  }
  ParallelForWeighted(
      n, num_threads,
      [&store](size_t i) -> uint64_t { return store.Length(i); },
      [&](size_t i) {
        const std::vector<SimilarityResult> sims =
            bank_.ScanAll(store.Symbols(i));
        Score best;
        for (size_t m = 0; m < k; ++m) {
          if (best.model < 0 || sims[m].log_sim > best.log_sim) {
            best.log_sim = sims[m].log_sim;
            best.current_log_sim = sims[m].log_sim;
            best.model = static_cast<int32_t>(m);
          }
        }
        (*out)[i] = best;
      });
}

void OnlineScorer::Reset() {
  position_ = 0;
  std::fill(rows_.begin(), rows_.end(), 0u);
  std::fill(y_.begin(), y_.end(), 0.0);
  std::fill(z_.begin(), z_.end(),
            -std::numeric_limits<double>::infinity());
  std::fill(started_.begin(), started_.end(), uint8_t{0});
}

}  // namespace cluseq
