#include "core/online_scorer.h"

#include <algorithm>

namespace cluseq {

OnlineScorer::OnlineScorer(const BackgroundModel& background)
    : background_(background) {}

size_t OnlineScorer::AddModel(const Pst* pst) {
  models_.push_back(ModelState{pst});
  // The window must cover the deepest context any model can use; the
  // prediction node never looks further back (short-memory property).
  window_capacity_ =
      std::max(window_capacity_, pst->options().max_depth);
  return models_.size() - 1;
}

void OnlineScorer::Push(SymbolId symbol) {
  std::span<const SymbolId> context(window_);
  const double log_bg = background_.LogProbability(symbol);
  for (ModelState& m : models_) {
    const double x =
        m.pst->LogConditionalProbability(context, symbol) - log_bg;
    if (!m.started || m.y + x < x) {
      m.y = x;  // Restart the running segment at this symbol.
    } else {
      m.y += x;
    }
    m.started = true;
    m.z = std::max(m.z, m.y);
  }
  window_.push_back(symbol);
  if (window_.size() > window_capacity_) {
    window_.erase(window_.begin());
  }
  ++position_;
}

OnlineScorer::Score OnlineScorer::ScoreOf(size_t index) const {
  const ModelState& m = models_[index];
  Score s;
  s.log_sim = m.z;
  s.current_log_sim = m.started ? m.y : 0.0;
  s.model = static_cast<int32_t>(index);
  return s;
}

OnlineScorer::Score OnlineScorer::BestScore() const {
  Score best;
  for (size_t i = 0; i < models_.size(); ++i) {
    Score s = ScoreOf(i);
    if (best.model < 0 || s.log_sim > best.log_sim) best = s;
  }
  return best;
}

OnlineScorer::Score OnlineScorer::BestCurrentScore() const {
  Score best;
  for (size_t i = 0; i < models_.size(); ++i) {
    Score s = ScoreOf(i);
    if (best.model < 0 || s.current_log_sim > best.current_log_sim) {
      best = s;
    }
  }
  return best;
}

void OnlineScorer::Reset() {
  window_.clear();
  position_ = 0;
  for (ModelState& m : models_) {
    m.y = 0.0;
    m.z = -std::numeric_limits<double>::infinity();
    m.started = false;
  }
}

}  // namespace cluseq
