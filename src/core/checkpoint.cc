#include "core/checkpoint.h"

#include <dirent.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "obs/metrics.h"
#include "util/crc32c.h"
#include "util/file_io.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace cluseq {

namespace {

constexpr char kMagic[4] = {'C', 'K', 'P', 'T'};
constexpr uint32_t kVersion = 1;
constexpr uint32_t kSectionCount = 2;  // meta, state.
/// magic + version + file_bytes + section_count + flags
/// + 2 × (offset, size, crc, pad) + header_crc.
constexpr size_t kHeaderBytes = 4 + 4 + 8 + 4 + 4 + 2 * 24 + 4;
/// Sanity cap before any allocation: no real checkpoint approaches this
/// (the state is O(corpus indices + PST nodes)), and a hostile size field
/// must not drive a huge resize.
constexpr uint64_t kMaxFileBytes = 1ULL << 32;
constexpr size_t kMaxBuildBytes = 256;

CheckpointSaveHook g_save_hook = nullptr;

template <typename T>
void AppendPod(std::string* out, const T& value) {
  out->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

/// Bounded little-endian reader over an untrusted byte span. Every Read*
/// checks the remaining length; once a read fails, all later reads fail.
class Reader {
 public:
  Reader(const char* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  bool ReadPod(T* value) {
    if (!ok_ || size_ - pos_ < sizeof(T)) return Fail();
    std::memcpy(value, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }

  bool ReadBytes(size_t count, std::string* out) {
    if (!ok_ || size_ - pos_ < count) return Fail();
    out->assign(data_ + pos_, count);
    pos_ += count;
    return true;
  }

  /// Reads a u64 element count and rejects it unless `count * min_bytes`
  /// still fits in the unread tail — the cap that makes later resizes safe.
  bool ReadCount(size_t min_elem_bytes, uint64_t* count) {
    if (!ReadPod(count)) return false;
    if (min_elem_bytes != 0 && *count > remaining() / min_elem_bytes) {
      return Fail();
    }
    return true;
  }

  template <typename T>
  bool ReadVec(uint64_t count, std::vector<T>* out) {
    if (!ok_ || size_ - pos_ < count * sizeof(T)) return Fail();
    out->resize(static_cast<size_t>(count));
    std::memcpy(out->data(), data_ + pos_,
                static_cast<size_t>(count) * sizeof(T));
    pos_ += static_cast<size_t>(count) * sizeof(T);
    return true;
  }

  size_t remaining() const { return ok_ ? size_ - pos_ : 0; }
  bool ok() const { return ok_; }
  bool done() const { return ok_ && pos_ == size_; }

 private:
  bool Fail() {
    ok_ = false;
    return false;
  }

  const char* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

Status Corrupt(const std::string& detail) {
  static obs::Counter& corrupt = obs::MetricsRegistry::Get().GetCounter(
      "persistence.corruption_detected");
  corrupt.Increment();
  return Status::Corruption("checkpoint: " + detail);
}

// --- FNV-1a helpers for the fingerprints ------------------------------

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFF)) * kFnvPrime;
  }
  return h;
}

uint64_t FnvMixDouble(uint64_t h, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return FnvMix(h, bits);
}

// --- section encoders --------------------------------------------------

std::string EncodeMeta(const ClustererCheckpoint& ckpt) {
  std::string out;
  AppendPod(&out, ckpt.options_fingerprint);
  AppendPod(&out, ckpt.corpus_fingerprint);
  AppendPod(&out, ckpt.num_sequences);
  AppendPod(&out, ckpt.total_symbols);
  std::string build = ckpt.build.substr(0, kMaxBuildBytes);
  AppendPod(&out, static_cast<uint32_t>(build.size()));
  out.append(build);
  return out;
}

std::string EncodeState(const ClustererCheckpoint& ckpt) {
  std::string out;
  AppendPod(&out, ckpt.iteration);
  AppendPod(&out, ckpt.log_t);
  AppendPod(&out, ckpt.next_cluster_id);
  AppendPod(&out, ckpt.prev_new);
  AppendPod(&out, ckpt.prev_consolidated);
  AppendPod(&out, static_cast<uint8_t>(ckpt.adjuster_frozen ? 1 : 0));
  AppendPod(&out, static_cast<uint8_t>(ckpt.have_prev_fingerprint ? 1 : 0));
  for (uint64_t s : ckpt.rng.s) AppendPod(&out, s);
  AppendPod(&out, static_cast<uint8_t>(ckpt.rng.has_cached_normal ? 1 : 0));
  AppendPod(&out, ckpt.rng.cached_normal);
  AppendPod(&out, static_cast<uint64_t>(ckpt.prev_fingerprint.size()));
  for (uint64_t v : ckpt.prev_fingerprint) AppendPod(&out, v);
  AppendPod(&out, static_cast<uint64_t>(ckpt.prev_best_cluster.size()));
  for (int32_t v : ckpt.prev_best_cluster) AppendPod(&out, v);
  AppendPod(&out, static_cast<uint64_t>(ckpt.best_log_sim.size()));
  for (double v : ckpt.best_log_sim) AppendPod(&out, v);
  AppendPod(&out, static_cast<uint64_t>(ckpt.unclustered.size()));
  for (uint64_t v : ckpt.unclustered) AppendPod(&out, v);
  AppendPod(&out, static_cast<uint64_t>(ckpt.clusters.size()));
  for (const CheckpointClusterState& c : ckpt.clusters) {
    AppendPod(&out, c.id);
    AppendPod(&out, c.seed_index);
    AppendPod(&out, static_cast<uint64_t>(c.members.size()));
    for (uint64_t m : c.members) AppendPod(&out, m);
    AppendPod(&out, static_cast<uint64_t>(c.contributions.size()));
    for (const auto& contrib : c.contributions) {
      AppendPod(&out, contrib.seq_index);
      AppendPod(&out, contrib.begin);
      AppendPod(&out, contrib.end);
    }
    AppendPod(&out, static_cast<uint64_t>(c.pst_blob.size()));
    out.append(c.pst_blob);
  }
  return out;
}

// --- section decoders --------------------------------------------------

Status DecodeMeta(std::string_view bytes, ClustererCheckpoint* out) {
  Reader r(bytes.data(), bytes.size());
  uint32_t build_len = 0;
  if (!r.ReadPod(&out->options_fingerprint) ||
      !r.ReadPod(&out->corpus_fingerprint) ||
      !r.ReadPod(&out->num_sequences) || !r.ReadPod(&out->total_symbols) ||
      !r.ReadPod(&build_len)) {
    return Corrupt("truncated meta section");
  }
  if (build_len > kMaxBuildBytes) {
    return Corrupt("implausible build string length");
  }
  if (!r.ReadBytes(build_len, &out->build) || !r.done()) {
    return Corrupt("meta section size mismatch");
  }
  return Status::OK();
}

Status DecodeState(std::string_view bytes, ClustererCheckpoint* out) {
  Reader r(bytes.data(), bytes.size());
  uint8_t adjuster_frozen = 0, have_prev_fp = 0, has_cached_normal = 0;
  if (!r.ReadPod(&out->iteration) || !r.ReadPod(&out->log_t) ||
      !r.ReadPod(&out->next_cluster_id) || !r.ReadPod(&out->prev_new) ||
      !r.ReadPod(&out->prev_consolidated) || !r.ReadPod(&adjuster_frozen) ||
      !r.ReadPod(&have_prev_fp)) {
    return Corrupt("truncated state header");
  }
  if (adjuster_frozen > 1 || have_prev_fp > 1) {
    return Corrupt("state flag is not a boolean");
  }
  if (std::isnan(out->log_t) || std::isinf(out->log_t)) {
    return Corrupt("non-finite log threshold");
  }
  out->adjuster_frozen = adjuster_frozen != 0;
  out->have_prev_fingerprint = have_prev_fp != 0;
  for (uint64_t& s : out->rng.s) {
    if (!r.ReadPod(&s)) return Corrupt("truncated RNG state");
  }
  if (!r.ReadPod(&has_cached_normal) || has_cached_normal > 1 ||
      !r.ReadPod(&out->rng.cached_normal)) {
    return Corrupt("truncated RNG state");
  }
  out->rng.has_cached_normal = has_cached_normal != 0;

  const uint64_t n = out->num_sequences;
  uint64_t count = 0;
  if (!r.ReadCount(sizeof(uint64_t), &count) ||
      !r.ReadVec(count, &out->prev_fingerprint)) {
    return Corrupt("truncated previous fingerprint");
  }
  if (!r.ReadCount(sizeof(int32_t), &count) ||
      !r.ReadVec(count, &out->prev_best_cluster)) {
    return Corrupt("truncated best-cluster vector");
  }
  if (!out->prev_best_cluster.empty() && out->prev_best_cluster.size() != n) {
    return Corrupt("best-cluster vector does not match the corpus size");
  }
  if (!r.ReadCount(sizeof(double), &count) ||
      !r.ReadVec(count, &out->best_log_sim)) {
    return Corrupt("truncated best-log-sim vector");
  }
  if (out->best_log_sim.size() != out->prev_best_cluster.size()) {
    return Corrupt("best-log-sim and best-cluster vectors disagree");
  }
  for (double v : out->best_log_sim) {
    // -inf is legitimate (no cluster scored); NaN and +inf never are.
    if (std::isnan(v) || v == std::numeric_limits<double>::infinity()) {
      return Corrupt("best-log-sim is NaN or +inf");
    }
  }
  if (!r.ReadCount(sizeof(uint64_t), &count) ||
      !r.ReadVec(count, &out->unclustered)) {
    return Corrupt("truncated unclustered set");
  }
  if (out->unclustered.size() > n) {
    return Corrupt("unclustered set larger than the corpus");
  }
  for (uint64_t v : out->unclustered) {
    if (v >= n) return Corrupt("unclustered index out of range");
  }

  uint64_t num_clusters = 0;
  // Each cluster occupies at least id + seed + three counts.
  if (!r.ReadCount(4 + 8 + 3 * 8, &num_clusters)) {
    return Corrupt("truncated cluster count");
  }
  for (int32_t v : out->prev_best_cluster) {
    if (v < -1 || (v >= 0 && static_cast<uint64_t>(v) >= num_clusters)) {
      return Corrupt("best-cluster index out of range");
    }
  }
  out->clusters.resize(static_cast<size_t>(num_clusters));
  for (CheckpointClusterState& c : out->clusters) {
    if (!r.ReadPod(&c.id) || !r.ReadPod(&c.seed_index)) {
      return Corrupt("truncated cluster header");
    }
    if (c.id >= out->next_cluster_id) {
      return Corrupt("cluster id not below the next-id watermark");
    }
    if (c.seed_index < -1 ||
        (c.seed_index >= 0 && static_cast<uint64_t>(c.seed_index) >= n)) {
      return Corrupt("cluster seed index out of range");
    }
    if (!r.ReadCount(sizeof(uint64_t), &count) ||
        !r.ReadVec(count, &c.members)) {
      return Corrupt("truncated cluster members");
    }
    for (uint64_t m : c.members) {
      if (m >= n) return Corrupt("cluster member out of range");
    }
    if (!r.ReadCount(3 * sizeof(uint64_t), &count)) {
      return Corrupt("truncated contribution count");
    }
    c.contributions.resize(static_cast<size_t>(count));
    uint64_t prev_seq = 0;
    bool first = true;
    for (auto& contrib : c.contributions) {
      if (!r.ReadPod(&contrib.seq_index) || !r.ReadPod(&contrib.begin) ||
          !r.ReadPod(&contrib.end)) {
        return Corrupt("truncated contribution");
      }
      if (contrib.seq_index >= n || contrib.begin > contrib.end) {
        return Corrupt("contribution out of range");
      }
      // Strictly increasing: the canonical order the encoder emits, and
      // the uniqueness the contributions map guarantees.
      if (!first && contrib.seq_index <= prev_seq) {
        return Corrupt("contributions out of order");
      }
      prev_seq = contrib.seq_index;
      first = false;
    }
    uint64_t blob_len = 0;
    if (!r.ReadCount(1, &blob_len) ||
        !r.ReadBytes(static_cast<size_t>(blob_len), &c.pst_blob)) {
      return Corrupt("truncated cluster PST blob");
    }
  }
  if (!r.done()) return Corrupt("trailing bytes after state section");
  return Status::OK();
}

}  // namespace

uint64_t FingerprintOptions(const CluseqOptions& options) {
  uint64_t h = kFnvOffset;
  h = FnvMix(h, options.initial_clusters);
  h = FnvMixDouble(h, options.similarity_threshold);
  h = FnvMix(h, options.auto_initial_threshold ? 1 : 0);
  h = FnvMixDouble(h, options.auto_threshold_quantile);
  h = FnvMix(h, options.rebuild_each_iteration ? 1 : 0);
  h = FnvMix(h, options.within_scan_updates ? 1 : 0);
  h = FnvMix(h, options.significance_threshold);
  h = FnvMixDouble(h, options.sample_multiplier);
  h = FnvMix(h, options.adjust_threshold ? 1 : 0);
  h = FnvMix(h, options.histogram_buckets);
  h = FnvMix(h, options.min_unique_members);
  h = FnvMix(h, options.max_iterations);
  h = FnvMix(h, static_cast<uint64_t>(options.visit_order));
  h = FnvMix(h, options.rng_seed);
  h = FnvMix(h, options.pst.max_depth);
  h = FnvMix(h, options.pst.significance_threshold);
  h = FnvMix(h, options.pst.max_memory_bytes);
  h = FnvMix(h, static_cast<uint64_t>(options.pst.prune_strategy));
  h = FnvMixDouble(h, options.pst.smoothing_p_min);
  // Algorithmic because it sets the censor floor of the §4.6 adjuster's
  // histogram while the adjuster is live — a different window walks a
  // different threshold trajectory. The prefilter perf knobs
  // (signature_budget_bytes, prefilter_prefix) deliberately stay out: they
  // never change any output, so resuming under different ones is legal.
  h = FnvMixDouble(h, options.adjust_bound_window);
  return h;
}

Status EncodeCheckpoint(const ClustererCheckpoint& ckpt, std::string* out) {
  const std::string meta = EncodeMeta(ckpt);
  const std::string state = EncodeState(ckpt);
  const uint64_t file_bytes = kHeaderBytes + meta.size() + state.size();
  if (file_bytes > kMaxFileBytes) {
    return Status::InvalidArgument("checkpoint exceeds the format size cap");
  }
  out->clear();
  out->reserve(static_cast<size_t>(file_bytes));
  out->append(kMagic, sizeof(kMagic));
  AppendPod(out, kVersion);
  AppendPod(out, file_bytes);
  AppendPod(out, kSectionCount);
  AppendPod(out, uint32_t{0});  // flags
  const uint64_t meta_offset = kHeaderBytes;
  const uint64_t state_offset = meta_offset + meta.size();
  AppendPod(out, meta_offset);
  AppendPod(out, static_cast<uint64_t>(meta.size()));
  AppendPod(out, Crc32c(meta.data(), meta.size()));
  AppendPod(out, uint32_t{0});
  AppendPod(out, state_offset);
  AppendPod(out, static_cast<uint64_t>(state.size()));
  AppendPod(out, Crc32c(state.data(), state.size()));
  AppendPod(out, uint32_t{0});
  AppendPod(out, Crc32c(out->data(), out->size()));  // header_crc
  out->append(meta);
  out->append(state);
  return Status::OK();
}

Status DecodeCheckpoint(std::string_view bytes, ClustererCheckpoint* out) {
  if (bytes.size() < kHeaderBytes) return Corrupt("file shorter than header");
  if (bytes.size() > kMaxFileBytes) return Corrupt("file exceeds size cap");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Corrupt("bad magic");
  }
  Reader header(bytes.data() + sizeof(kMagic),
                kHeaderBytes - sizeof(kMagic));
  uint32_t version = 0, section_count = 0, flags = 0;
  uint64_t file_bytes = 0;
  header.ReadPod(&version);
  header.ReadPod(&file_bytes);
  header.ReadPod(&section_count);
  header.ReadPod(&flags);
  struct SectionEntry {
    uint64_t offset = 0;
    uint64_t size = 0;
    uint32_t crc = 0;
    uint32_t pad = 0;
  } sections[2];
  for (SectionEntry& s : sections) {
    header.ReadPod(&s.offset);
    header.ReadPod(&s.size);
    header.ReadPod(&s.crc);
    header.ReadPod(&s.pad);
  }
  uint32_t header_crc = 0;
  header.ReadPod(&header_crc);
  if (!header.done()) return Corrupt("malformed header");
  if (Crc32c(bytes.data(), kHeaderBytes - sizeof(uint32_t)) != header_crc) {
    return Corrupt("header checksum mismatch");
  }
  if (version != kVersion) {
    return Corrupt(StringPrintf("unsupported version %u", version));
  }
  if (file_bytes != bytes.size()) {
    return Corrupt("declared size does not match the file");
  }
  if (section_count != kSectionCount || flags != 0) {
    return Corrupt("unexpected section table shape");
  }
  // Exact contiguous layout: header | meta | state, nothing else.
  if (sections[0].offset != kHeaderBytes ||
      sections[1].offset != sections[0].offset + sections[0].size ||
      sections[1].offset + sections[1].size != file_bytes ||
      sections[0].pad != 0 || sections[1].pad != 0) {
    return Corrupt("section layout mismatch");
  }
  for (const SectionEntry& s : sections) {
    if (Crc32c(bytes.data() + s.offset, static_cast<size_t>(s.size)) !=
        s.crc) {
      return Corrupt("section checksum mismatch");
    }
  }
  ClustererCheckpoint parsed;
  CLUSEQ_RETURN_NOT_OK(DecodeMeta(
      bytes.substr(static_cast<size_t>(sections[0].offset),
                   static_cast<size_t>(sections[0].size)),
      &parsed));
  CLUSEQ_RETURN_NOT_OK(DecodeState(
      bytes.substr(static_cast<size_t>(sections[1].offset),
                   static_cast<size_t>(sections[1].size)),
      &parsed));
  *out = std::move(parsed);
  return Status::OK();
}

Status LoadCheckpointFile(const std::string& path, ClustererCheckpoint* out) {
  std::string bytes;
  CLUSEQ_RETURN_NOT_OK(ReadFileToString(path, &bytes));
  Status st = DecodeCheckpoint(bytes, out);
  if (st.IsCorruption()) {
    return Status::Corruption(path + ": " + st.message());
  }
  return st;
}

std::string CheckpointFilePath(const std::string& dir, uint64_t iteration) {
  return StringPrintf("%s/ckpt_%08llu.ckpt", dir.c_str(),
                      static_cast<unsigned long long>(iteration));
}

Status ListCheckpointFiles(const std::string& dir,
                           std::vector<std::string>* newest_first) {
  newest_first->clear();
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::NotFound("no checkpoint directory at " + dir);
  }
  std::vector<std::pair<uint64_t, std::string>> found;
  for (struct dirent* entry = ::readdir(d); entry != nullptr;
       entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    constexpr std::string_view kPrefix = "ckpt_";
    constexpr std::string_view kSuffix = ".ckpt";
    if (name.size() <= kPrefix.size() + kSuffix.size() ||
        name.compare(0, kPrefix.size(), kPrefix) != 0 ||
        name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                     kSuffix) != 0) {
      continue;
    }
    const std::string digits = name.substr(
        kPrefix.size(), name.size() - kPrefix.size() - kSuffix.size());
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    found.emplace_back(std::strtoull(digits.c_str(), nullptr, 10),
                       dir + "/" + name);
  }
  ::closedir(d);
  if (found.empty()) {
    return Status::NotFound("no checkpoint files in " + dir);
  }
  std::sort(found.begin(), found.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (auto& [iter, path] : found) newest_first->push_back(std::move(path));
  return Status::OK();
}

Status WriteCheckpointRetainTwo(const std::string& dir, uint64_t iteration,
                                std::string_view encoded) {
  CLUSEQ_RETURN_NOT_OK(EnsureDirectory(dir));
  const std::string path = CheckpointFilePath(dir, iteration);
  CLUSEQ_RETURN_NOT_OK(WriteFileAtomic(path, encoded));
  static obs::Counter& bytes_written =
      obs::MetricsRegistry::Get().GetCounter("checkpoint.bytes_written");
  bytes_written.Add(encoded.size());
  // Retention: keep the newest two complete checkpoints, so the previous
  // one stays loadable even if the newest is lost to later corruption.
  std::vector<std::string> files;
  if (ListCheckpointFiles(dir, &files).ok()) {
    for (size_t i = 2; i < files.size(); ++i) ::unlink(files[i].c_str());
  }
  if (g_save_hook != nullptr) g_save_hook(iteration, path);
  return Status::OK();
}

Status LoadLatestCheckpoint(const std::string& dir, bool strict,
                            ClustererCheckpoint* out,
                            std::string* loaded_path) {
  std::vector<std::string> files;
  CLUSEQ_RETURN_NOT_OK(ListCheckpointFiles(dir, &files));
  Status newest_status = LoadCheckpointFile(files[0], out);
  if (newest_status.ok()) {
    if (loaded_path != nullptr) *loaded_path = files[0];
    return Status::OK();
  }
  if (strict || files.size() < 2) return newest_status;
  CLUSEQ_LOG(kWarning) << "checkpoint " << files[0]
                       << " is unreadable (" << newest_status.ToString()
                       << "); falling back to " << files[1];
  CLUSEQ_RETURN_NOT_OK(LoadCheckpointFile(files[1], out));
  // The corrupt newest file has no value and would poison retention (it
  // outranks by iteration any file the resumed run writes before passing
  // it); drop it now that the fallback succeeded.
  ::unlink(files[0].c_str());
  if (loaded_path != nullptr) *loaded_path = files[1];
  return Status::OK();
}

void SetCheckpointSaveHookForTest(CheckpointSaveHook hook) {
  g_save_hook = hook;
}

}  // namespace cluseq
