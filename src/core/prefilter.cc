#include "core/prefilter.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.h"

namespace cluseq {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// Per-thread scratch. The stamp/count arrays are sized A² (bigram codes) or
// A (unigram fallback) and reset lazily via the epoch counter, so a scan
// costs O(distinct codes), not O(A²).
struct Workspace {
  std::vector<uint32_t> stamp;
  std::vector<double> count;
  std::vector<uint32_t> touched;
  uint32_t epoch = 0;

  std::vector<double> ubs;
  std::vector<uint32_t> order;
  std::vector<uint32_t> candidates;
  std::vector<uint8_t> exact;
  std::vector<SimilarityResult> tmp;
  std::vector<std::pair<double, uint32_t>> residual;
  std::vector<uint8_t> model_exact;
  std::vector<double> model_value;
};

Workspace& GetWorkspace() {
  static thread_local Workspace ws;
  return ws;
}

// Counts the codes driving the level-1 bound: bigram codes s_{i-1}·A + s_i
// for positions i ≥ 1 when the bank carries bigram caps, plain symbols at
// positions i ≥ 1 otherwise. Position 0 is handled exactly by the caller.
void CountCodes(std::span<const SymbolId> symbols, size_t alphabet,
                bool bigram, Workspace& ws) {
  const size_t table = bigram ? alphabet * alphabet : alphabet;
  if (ws.stamp.size() < table) {
    ws.stamp.assign(table, 0);
    ws.count.resize(table);
    ws.epoch = 0;
  }
  ++ws.epoch;
  if (ws.epoch == 0) {  // Wrapped: every stale stamp now looks current.
    std::fill(ws.stamp.begin(), ws.stamp.end(), 0);
    ws.epoch = 1;
  }
  ws.touched.clear();
  for (size_t i = 1; i < symbols.size(); ++i) {
    const size_t code = bigram
        ? static_cast<size_t>(symbols[i - 1]) * alphabet + symbols[i]
        : static_cast<size_t>(symbols[i]);
    if (ws.stamp[code] != ws.epoch) {
      ws.stamp[code] = ws.epoch;
      ws.count[code] = 0.0;
      ws.touched.push_back(static_cast<uint32_t>(code));
    }
    ws.count[code] += 1.0;
  }
}

void RecordMetrics(const PrefilterScanStats& stats) {
  static obs::Counter& skipped = obs::MetricsRegistry::Get().GetCounter(
      "prefilter.candidates_skipped");
  static obs::Counter& early = obs::MetricsRegistry::Get().GetCounter(
      "prefilter.dp_early_exits");
  if (stats.candidates_skipped > 0) skipped.Add(stats.candidates_skipped);
  if (stats.dp_early_exits > 0) early.Add(stats.dp_early_exits);
}

// Slack of the level-1 bound on the best-scoring model, observed once per
// scan — cheap, and enough to judge how tight the caps are in practice.
void RecordSlack(double bound, double exact_value) {
  if (!std::isfinite(bound) || !std::isfinite(exact_value)) return;
  static constexpr double kSlackBounds[] = {0.5, 1.0, 2.0, 4.0,
                                            8.0, 16.0, 32.0, 64.0};
  static obs::Histogram& slack = obs::MetricsRegistry::Get().GetHistogram(
      "prefilter.bound_slack", kSlackBounds);
  slack.Observe(bound - exact_value);
}

}  // namespace

// Fills ws.ubs[m] with an admissible upper bound on log SIM_m(symbols) for
// every model. Requires symbols non-empty.
static void ComputeUpperBounds(const FrozenBank& bank,
                               std::span<const SymbolId> symbols,
                               Workspace& ws) {
  const size_t k = bank.num_models();
  const size_t alphabet = bank.alphabet_size();
  const bool bigram = bank.has_bigram_signature();
  CountCodes(symbols, alphabet, bigram, ws);
  ws.ubs.resize(k);
  double* ubs = ws.ubs.data();
  // The loops run code-major over the bank's transposed, positive-clamped
  // cap tables: for each distinct code the k per-model caps are a
  // contiguous column, so the update is a branch-free streaming
  // multiply-add the compiler vectorizes — the model-major layout made
  // this pass cost as much as the scan it was meant to replace.
  //
  // Position 0 is capped by the per-symbol maxima (the root row's ratio is
  // ≤ the max over all states); its transposed column doubles as the
  // initializer, which also pins every bound at ≥ 0 — admissible even for
  // an all-negative model, whose true Z is a single negative X.
  {
    const double* col = bank.signature_pos_max_symbol_t(symbols[0]).data();
    std::copy(col, col + k, ubs);
  }
  for (const uint32_t code : ws.touched) {
    const double cnt = ws.count[code];
    const double* col = bigram
                            ? bank.signature_pos_bigram_cap_t(code).data()
                            : bank.signature_pos_max_symbol_t(code).data();
    for (size_t m = 0; m < k; ++m) {
      ubs[m] += cnt * col[m];
    }
  }
}

void ScanPrefilter::ScanAllWithThreshold(std::span<const SymbolId> symbols,
                                         double log_t,
                                         SimilarityResult* results,
                                         PrefilterScanStats* stats) const {
  const size_t k = bank_->num_models();
  PrefilterScanStats local;
  local.models_total = k;
  if (k == 0) {
    if (stats) *stats = local;
    return;
  }
  if (symbols.empty()) {
    // Every model scores -inf on an empty sequence; delegate.
    bank_->ScanAll(symbols, results);
    if (stats) *stats = local;
    return;
  }

  Workspace& ws = GetWorkspace();
  ComputeUpperBounds(*bank_, symbols, ws);

  // Level 1: drop models whose bound cannot reach the threshold. Their
  // slot records the bound itself — strictly below log_t, so downstream
  // join tests behave exactly as with the true (smaller) score.
  ws.candidates.clear();
  for (size_t m = 0; m < k; ++m) {
    if (ws.ubs[m] >= log_t) {
      ws.candidates.push_back(static_cast<uint32_t>(m));
    } else {
      results[m] = SimilarityResult{ws.ubs[m], 0, 0};
    }
  }
  local.candidates_skipped = k - ws.candidates.size();

  // Level 2: bounded DP over the survivors with the threshold as target.
  double best_exact = kNegInf;
  size_t best_m = static_cast<size_t>(-1);
  if (!ws.candidates.empty()) {
    ws.tmp.resize(ws.candidates.size());
    ws.exact.resize(ws.candidates.size());
    local.dp_early_exits = bank_->ScanCandidatesBounded(
        symbols, ws.candidates, log_t, ws.tmp.data(), ws.exact.data());
    for (size_t j = 0; j < ws.candidates.size(); ++j) {
      const size_t m = ws.candidates[j];
      results[m] = ws.tmp[j];
      if (ws.exact[j] && ws.tmp[j].log_sim > best_exact) {
        best_exact = ws.tmp[j].log_sim;
        best_m = m;
      }
    }
  }

  // Residual pass: the per-sequence maximum must be exact even when it
  // falls below the threshold (best_log_sim is a reported output). Models
  // whose recorded bound still beats the best exactly-known score are
  // re-scanned in descending bound order — a model whose bound is ≤
  // best_exact cannot change the max; pruned and abandoned slots both hold
  // admissible bounds, so one rule covers both. The re-scan runs in
  // interleaved chunks with the running best as the abandon target (the
  // same argmax loop BestModel uses): the true-max model can be neither
  // skipped (its bound ≥ its score ≥ best_exact) nor abandoned (any
  // admissible mid-scan bound on it is ≥ its score ≥ the target), so the
  // final max is exact. Sequences that joined something never get here:
  // best_exact ≥ log_t then, and every non-exact bound is < log_t.
  ws.model_exact.assign(k, 0);
  for (size_t j = 0; j < ws.candidates.size(); ++j) {
    if (ws.exact[j]) ws.model_exact[ws.candidates[j]] = 1;
  }
  ws.residual.clear();
  for (size_t m = 0; m < k; ++m) {
    if (!ws.model_exact[m] && results[m].log_sim > best_exact) {
      ws.residual.emplace_back(results[m].log_sim, static_cast<uint32_t>(m));
    }
  }
  std::sort(ws.residual.begin(), ws.residual.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first > b.first;
              return a.second < b.second;
            });
  constexpr size_t kResidualChunk = 16;
  size_t pos = 0;
  while (pos < ws.residual.size()) {
    ws.candidates.clear();
    while (pos < ws.residual.size() &&
           ws.candidates.size() < kResidualChunk) {
      const auto& [bound, m32] = ws.residual[pos];
      if (!(bound > best_exact)) {
        // Sorted descending: every later bound is ≤ this one.
        pos = ws.residual.size();
        break;
      }
      ws.candidates.push_back(m32);
      ++pos;
    }
    if (ws.candidates.empty()) break;
    ws.tmp.resize(ws.candidates.size());
    ws.exact.resize(ws.candidates.size());
    local.dp_early_exits += bank_->ScanCandidatesBounded(
        symbols, ws.candidates, best_exact, ws.tmp.data(), ws.exact.data());
    for (size_t j = 0; j < ws.candidates.size(); ++j) {
      const size_t m = ws.candidates[j];
      // Abandoned lanes leave a refined admissible bound (< best_exact at
      // chunk start, hence < log t) in the slot; exact lanes leave the
      // true result, which is ≤ its bound < log t — no new joins either
      // way.
      results[m] = ws.tmp[j];
      if (ws.exact[j]) {
        ++local.residual_rescans;
        if (ws.tmp[j].log_sim > best_exact) {
          best_exact = ws.tmp[j].log_sim;
          best_m = m;
        }
      }
    }
  }

  if (best_m != static_cast<size_t>(-1)) {
    RecordSlack(ws.ubs[best_m], best_exact);
  }
  RecordMetrics(local);
  if (stats) *stats = local;
}

int32_t ScanPrefilter::BestModel(std::span<const SymbolId> symbols,
                                 double* best_log_sim,
                                 PrefilterScanStats* stats,
                                 size_t exclude_model) const {
  const size_t k = bank_->num_models();
  PrefilterScanStats local;
  local.models_total = k;
  double best = kNegInf;
  int32_t best_pos = -1;
  if (k == 0 || symbols.empty() || (k == 1 && exclude_model == 0)) {
    // Empty sequences score -inf everywhere; the exhaustive first-strict-max
    // loop never fires on -inf, so the answer is "no model" either way.
    if (best_log_sim) *best_log_sim = best;
    if (stats) *stats = local;
    return best_pos;
  }

  Workspace& ws = GetWorkspace();
  ComputeUpperBounds(*bank_, symbols, ws);

  // Process models in descending bound order (ties: ascending index) in
  // AVX2-friendly chunks, tightening the abandon target as exact scores
  // come in. Skipping requires ub strictly below the running best: a model
  // whose bound TIES the best could still attain it and win the ascending-
  // index tie-break, so it must be scanned.
  ws.order.clear();
  for (size_t m = 0; m < k; ++m) {
    if (m != exclude_model) ws.order.push_back(static_cast<uint32_t>(m));
  }
  std::sort(ws.order.begin(), ws.order.end(),
            [&](uint32_t a, uint32_t b) {
              if (ws.ubs[a] != ws.ubs[b]) return ws.ubs[a] > ws.ubs[b];
              return a < b;
            });

  constexpr size_t kChunk = 16;
  std::vector<double>& exact_value = ws.model_value;
  std::vector<uint8_t>& have_exact = ws.model_exact;
  exact_value.assign(k, kNegInf);
  have_exact.assign(k, 0);
  size_t pos = 0;
  double best_bound = kNegInf;
  while (pos < ws.order.size()) {
    ws.candidates.clear();
    while (pos < ws.order.size() && ws.candidates.size() < kChunk) {
      const uint32_t m = ws.order[pos];
      if (ws.ubs[m] < best) {
        // Sorted descending: everything from here on is hopeless too.
        pos = ws.order.size();
        break;
      }
      ws.candidates.push_back(m);
      ++pos;
    }
    if (ws.candidates.empty()) break;
    ws.tmp.resize(ws.candidates.size());
    ws.exact.resize(ws.candidates.size());
    local.dp_early_exits += bank_->ScanCandidatesBounded(
        symbols, ws.candidates, best, ws.tmp.data(), ws.exact.data());
    for (size_t j = 0; j < ws.candidates.size(); ++j) {
      if (!ws.exact[j]) continue;  // True score < best: cannot be argmax.
      const uint32_t m = ws.candidates[j];
      exact_value[m] = ws.tmp[j].log_sim;
      have_exact[m] = 1;
      if (ws.tmp[j].log_sim > best) {
        best = ws.tmp[j].log_sim;
        best_bound = ws.ubs[m];
      }
    }
  }
  local.candidates_skipped =
      (exclude_model < k ? k - 1 : k) -
      static_cast<size_t>(
          std::count(have_exact.begin(), have_exact.end(), uint8_t{1})) -
      local.dp_early_exits;

  // First model (ascending index) whose exact score equals the exact max —
  // identical to the exhaustive first-strict-max loop, which also leaves
  // best_pos at -1 when every score is -inf (or NaN).
  if (best > kNegInf) {
    for (size_t m = 0; m < k; ++m) {
      if (have_exact[m] && exact_value[m] == best) {
        best_pos = static_cast<int32_t>(m);
        break;
      }
    }
    RecordSlack(best_bound, best);
  }
  RecordMetrics(local);
  if (best_log_sim) *best_log_sim = best;
  if (stats) *stats = local;
  return best_pos;
}

}  // namespace cluseq
