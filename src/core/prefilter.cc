#include "core/prefilter.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace cluseq {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

// The dense bound pass runs an exact integer Kadane over offset-u8
// columns whose per-position values reach kSignaturePosLevels, so
// lengths at or past 2^23 (where length · 191 could overflow an int32
// running sum) delegate to the exhaustive scan (exact, just not
// accelerated).
constexpr size_t kMaxBoundedLen = size_t{1} << 23;

// Per-thread scratch, reused across calls: every buffer only ever grows,
// so the steady state allocates nothing per sequence (pinned by the
// workspace-probe regression test). The stamp/count arrays are sized to
// the bank's signature code space and reset lazily via the epoch counter,
// so a scan costs O(distinct codes), not O(code space).
struct Workspace {
  std::vector<uint32_t> stamp;
  std::vector<double> count;
  std::vector<uint32_t> touched;
  uint32_t epoch = 0;

  std::vector<uint32_t> seq_codes;   // per-position codes (level 1.5)
  std::vector<const uint8_t*> cols;  // per-position dense column pointers
  std::vector<int32_t> acc;          // dense level-1 integer Kadane maxima
  std::vector<uint32_t> candidates;
  std::vector<double> margins;
  std::vector<uint8_t> exact;
  std::vector<SimilarityResult> tmp;
  std::vector<uint8_t> model_exact;
  std::vector<double> model_value;
};

Workspace& GetWorkspace() {
  static thread_local Workspace ws;
  return ws;
}

// Geometry of the bank's signature tier, captured once per scan.
struct SigShape {
  size_t k = 0;
  size_t alphabet = 0;
  size_t order = 0;       // symbols per signature code
  size_t code_space = 0;  // alphabet^order
  size_t leads = 0;       // positions capped by maxsym (min'd vs length)
};

SigShape ShapeOf(const FrozenBank& bank, size_t len) {
  SigShape s;
  s.k = bank.num_models();
  s.alphabet = bank.alphabet_size();
  s.order = bank.signature_order();
  s.code_space = bank.signature_code_space();
  s.leads = std::min(bank.signature_lead_positions(), len);
  return s;
}

// Counts the codes driving the level-1 bounds: position i ≥ leads packs
// its (order − 1) preceding symbols and s_i into one code, most
// significant first (for order 1 the code is just s_i). Lead positions
// are handled by the callers via the maxsym tables. Also records every
// position's code (lead positions record the bare symbol) for the
// level-1.5 DP — truncated to a prefix at the threshold gate, full
// length in the residual refine.
void CountCodes(std::span<const SymbolId> symbols, const SigShape& s,
                Workspace& ws) {
  if (ws.stamp.size() < s.code_space) {
    ws.stamp.assign(s.code_space, 0);
    ws.count.resize(s.code_space);
    ws.epoch = 0;
  }
  ++ws.epoch;
  if (ws.epoch == 0) {  // Wrapped: every stale stamp now looks current.
    std::fill(ws.stamp.begin(), ws.stamp.end(), 0);
    ws.epoch = 1;
  }
  ws.touched.clear();
  ws.seq_codes.clear();
  const size_t mod = s.code_space / s.alphabet;  // alphabet^(order − 1)
  size_t code = 0;
  for (size_t i = 0; i < s.leads; ++i) {
    code = code * s.alphabet + symbols[i];
    ws.seq_codes.push_back(symbols[i]);
  }
  for (size_t i = s.leads; i < symbols.size(); ++i) {
    code = (code % mod) * s.alphabet + symbols[i];
    ws.seq_codes.push_back(static_cast<uint32_t>(code));
    if (ws.stamp[code] != ws.epoch) {
      ws.stamp[code] = ws.epoch;
      ws.count[code] = 0.0;
      ws.touched.push_back(static_cast<uint32_t>(code));
    }
    ws.count[code] += 1.0;
  }
}

// Factor applied when converting an integer bound accumulator back to a
// score: the tiny relative inflation keeps the final double ≥ the exact
// real product scale · acc (the multiply itself rounds), so quantized
// bounds never undercut the true score by a last-ulp accident.
double BoundScale(const FrozenBank& bank) {
  return bank.signature_quant_scale() * (1.0 + 0x1p-40);
}

// Level 1, dense: one exact integer Kadane per model over the bank's
// code-major signed offset-u8 cap columns. Each position points at its
// column (the per-symbol maxima for the leads, the packed code's caps
// after), and SignatureKadaneDense fills ws.acc[m] with the max window
// sum of (entry − zero point) — a true best-window bound, not a
// positional sum, so a model whose good caps never chain into one
// window dies right here instead of surviving into the residual pass.
// The column walk vectorizes (AVX2 when the CPU has it) at one table
// byte per (position, model) — this is the whole per-scan O(k) front;
// everything after it is output-sized.
void ComputeAllBounds(const FrozenBank& bank, const SigShape& s,
                      Workspace& ws) {
  const size_t len = ws.seq_codes.size();
  ws.cols.resize(len);
  for (size_t i = 0; i < len; ++i) {
    ws.cols[i] =
        i < s.leads ? bank.signature_pos_max_symbol_q(ws.seq_codes[i]).data()
                    : bank.signature_pos_cap_q(ws.seq_codes[i]).data();
  }
  ws.acc.resize(s.k);
  bank.SignatureKadaneDense(ws.cols.data(), len, ws.acc.data());
}

// Converts a dense integer Kadane maximum to an admissible double
// bound. A nonpositive maximum means every window's rounded-up cap sum
// is ≤ 0, which dominates the true Z per position, so 0.0 is already a
// valid bound (the true max window can be negative; the scan kernels'
// reported score never exceeds it). A positive maximum scales onto the
// shared grid — the table entries round the true caps up at build time
// (NaN lands on the top code, which dominates everything), the
// BoundScale multiply rounds up, and the pad absorbs the scan kernels'
// own FP summation order — so no bound can undercut the true score.
inline double UbFromZ(int32_t z, double up) {
  if (z <= 0) return 0.0;
  const double base = static_cast<double>(z) * up;
  return base + 1e-9 * (1.0 + base);
}

// Smallest integer Kadane maximum whose converted bound beats `value`
// (strictly, or ties when `strict` is false). UbFromZ is monotone
// nondecreasing in z, so one integer compare against this floor replays
// the double test bit-exactly — the O(k) passes over the bounds stay in
// int32 and never touch the result slots. Values even a zero bound
// beats return INT32_MIN (everything passes); values no representable
// bound reaches return INT32_MAX (a real maximum is capped by
// len · kSignaturePosLevels ≪ 2^31, so nothing passes).
int32_t ZBoundFloor(double value, double up, bool strict) {
  const auto pass = [value, strict](double ub) {
    return strict ? ub > value : ub >= value;
  };
  if (pass(0.0)) return std::numeric_limits<int32_t>::min();
  const double approx = value / up;
  if (!(approx < 2147483000.0)) return std::numeric_limits<int32_t>::max();
  // Start safely below the crossover (the pad shifts it by at most a few
  // units even at the int32 extreme) and walk up to the first pass.
  int64_t g = static_cast<int64_t>(approx) - 8;
  if (g < 1) g = 1;
  while (!pass(UbFromZ(static_cast<int32_t>(g), up))) ++g;
  return static_cast<int32_t>(g);
}

// Fine-grid level-1 bound for one model: the same positional-cap sum as
// the dense pass, but on the model-major int16 tables — a grid 4× or more
// finer than the bank-global u8 scale, so it often retires a residual
// model the coarse bound could not, at O(leads + touched) cost. Lead
// positions sum the unquantized per-symbol maxima's positive parts;
// context positions accumulate count · cap16 exactly in int64 (|cap16| <
// 2^15 and Σcount < 2^24, so no overflow), and qsum · kSignatureQuantStep
// is exact in double. The deterministic pad absorbs the FP rounding of
// the lead sum and final add against the scan kernels' own summation
// order, keeping the bound admissible.
double OnDemandUb1(const FrozenBank& bank, size_t m,
                   std::span<const SymbolId> symbols, const SigShape& s,
                   const Workspace& ws) {
  const double* maxsym = bank.signature_max_symbol(m).data();
  double lead = 0.0;
  for (size_t i = 0; i < s.leads; ++i) {
    const double v = maxsym[symbols[i]];
    if (v > 0.0) lead += v;
  }
  const int16_t* cap = bank.signature_cap_q(m).data();
  int64_t qsum = 0;
  for (const uint32_t code : ws.touched) {
    const int16_t q = cap[code];
    if (q > 0) qsum += static_cast<int64_t>(ws.count[code]) * q;
  }
  const double raw =
      lead + static_cast<double>(qsum) * FrozenBank::kSignatureQuantStep;
  return raw + 1e-9 * (1.0 + std::fabs(raw));
}

// Level 1.5: truncated-prefix Kadane over the first `p` symbols using the
// model's unclamped caps x̂_i (maxsym for leads, the tier cap otherwise).
// The best true window either closes inside the prefix — bounded by the
// prefix DP's Ẑ, since the caps dominate per position — or crosses it,
// where its prefix part is ≤ max(Ŷ, 0) and its tail is ≤ the level-1 mass
// beyond the prefix, ub1 − Σ_{i<P} max(x̂_i, 0). This sees cap *ordering*,
// which the positional sum cannot: a model whose good caps never chain
// into one window is pruned here. With p = full length every window
// closes inside the prefix, the tail vanishes (pass ub1 = 0), and the
// result is the tightest bound the signature tier can express — the
// residual refine uses that form. The pad absorbs the FP summation-order
// difference between the tail subtraction and the level-1 sum, keeping
// the bound admissible; it is a deterministic function of the operands,
// so results stay thread-count invariant.
double L15Bound(const FrozenBank& bank, size_t m, double ub1, size_t p,
                const SigShape& s, const Workspace& ws) {
  const double* maxsym = bank.signature_max_symbol(m).data();
  const int16_t* cap = bank.signature_cap_q(m).data();
  const uint32_t* codes = ws.seq_codes.data();
  // i = 0 peeled (Ŷ_0 = X̂_0) and NaN decisions mirrored from the scan
  // kernels: an ordered compare is false on NaN, keeping `extend` (only
  // the maxsym leads can be NaN now — the quantized caps never are). The
  // int16 caps round the true caps up, so they still dominate per
  // position, and q * kSignatureQuantStep is exact in double.
  double x = maxsym[codes[0]];
  double y = x;
  double z = x;
  double posprefix = x > 0.0 ? x : 0.0;
  for (size_t i = 1; i < p; ++i) {
    x = i < s.leads ? maxsym[codes[i]]
                    : static_cast<double>(cap[codes[i]]) *
                          FrozenBank::kSignatureQuantStep;
    const double extend = y + x;
    y = extend < x ? x : extend;
    if (y > z) z = y;
    posprefix += x > 0.0 ? x : 0.0;
  }
  double tail = ub1 - posprefix;
  if (!(tail > 0.0)) tail = 0.0;
  double ub = (y > 0.0 ? y : 0.0) + tail;
  if (z > ub) ub = z;
  return ub + 1e-9 * (1.0 + std::fabs(ub1) + std::fabs(posprefix));
}

// Per-(sequence, model) level-2 margin: the largest clamped cap over the
// codes this sequence actually contains — every level-2 checkpoint fires
// past the lead positions (the kernels never check before symbol 16), so
// all per-symbol terms after a checkpoint are capped by some touched
// code's cap. Far tighter than the bank's static per-model max ratio.
double SeqMargin(const FrozenBank& bank, size_t m, const Workspace& ws) {
  const int16_t* cap = bank.signature_cap_q(m).data();
  int16_t mx = 0;
  for (const uint32_t code : ws.touched) {
    if (cap[code] > mx) mx = cap[code];
  }
  return static_cast<double>(mx) * FrozenBank::kSignatureQuantStep;
}

void RecordMetrics(const PrefilterScanStats& stats) {
  static obs::Counter& skipped = obs::MetricsRegistry::Get().GetCounter(
      "prefilter.candidates_skipped");
  static obs::Counter& l15 = obs::MetricsRegistry::Get().GetCounter(
      "prefilter.l15_pruned");
  static obs::Counter& early = obs::MetricsRegistry::Get().GetCounter(
      "prefilter.dp_early_exits");
  static obs::Counter& checks = obs::MetricsRegistry::Get().GetCounter(
      "prefilter.checkpoints");
  if (stats.candidates_skipped > 0) skipped.Add(stats.candidates_skipped);
  if (stats.l15_pruned > 0) l15.Add(stats.l15_pruned);
  if (stats.dp_early_exits > 0) early.Add(stats.dp_early_exits);
  if (stats.checkpoints > 0) checks.Add(stats.checkpoints);
}

// Slack of the level-1 bound on the best-scoring model, observed once per
// scan — cheap, and enough to judge how tight the caps are in practice.
void RecordSlack(double bound, double exact_value) {
  if (!std::isfinite(bound) || !std::isfinite(exact_value)) return;
  static constexpr double kSlackBounds[] = {0.5, 1.0, 2.0, 4.0,
                                            8.0, 16.0, 32.0, 64.0};
  static obs::Histogram& slack = obs::MetricsRegistry::Get().GetHistogram(
      "prefilter.bound_slack", kSlackBounds);
  slack.Observe(bound - exact_value);
}

}  // namespace

void ScanPrefilter::ScanAllWithThreshold(std::span<const SymbolId> symbols,
                                         double log_t,
                                         SimilarityResult* results,
                                         PrefilterScanStats* stats) const {
  const size_t k = bank_->num_models();
  PrefilterScanStats local;
  local.models_total = k;
  if (k == 0) {
    if (stats) *stats = local;
    return;
  }
  if (symbols.empty() || !(log_t > 0.0) || symbols.size() >= kMaxBoundedLen) {
    // Empty sequences score -inf everywhere, a nonpositive threshold can
    // never beat a bound (all bounds are ≥ 0), and pathological lengths
    // could overflow the int32 Kadane sums: exhaustive is exact and the
    // right call in all three cases.
    bank_->ScanAll(symbols, results);
    if (stats) *stats = local;
    return;
  }

  Workspace& ws = GetWorkspace();
  const SigShape s = ShapeOf(*bank_, symbols.size());
  const size_t prefix = std::min(l15_prefix_, symbols.size());
  CountCodes(symbols, s, ws);
  ComputeAllBounds(*bank_, s, ws);

  // Levels 1 + 1.5: drop models whose bound cannot reach the threshold,
  // recording the tightest bound known — strictly below log_t, so
  // downstream join tests behave exactly as with the true (smaller)
  // scores. Coarse-bound survivors are refined on the fine int16 grid,
  // then through the truncated-prefix DP; the pruned majority costs one
  // conversion, one double compare, and one slot write each.
  const double up = BoundScale(*bank_);
  ws.candidates.clear();
  ws.margins.clear();
  for (size_t m = 0; m < k; ++m) {
    double val = UbFromZ(ws.acc[m], up);
    if (val < log_t) {
      results[m] = SimilarityResult{val, 0, 0};
      continue;
    }
    const double ub1f = OnDemandUb1(*bank_, m, symbols, s, ws);
    if (ub1f < val) val = ub1f;
    if (val < log_t) {
      results[m] = SimilarityResult{val, 0, 0};
      continue;
    }
    if (prefix > 0) {
      const double ub15 = L15Bound(*bank_, m, ub1f, prefix, s, ws);
      if (ub15 < val) val = ub15;
      if (val < log_t) {
        results[m] = SimilarityResult{val, 0, 0};
        ++local.l15_pruned;
        continue;
      }
    }
    ws.candidates.push_back(static_cast<uint32_t>(m));
    ws.margins.push_back(SeqMargin(*bank_, m, ws));
  }
  local.candidates_skipped = k - ws.candidates.size();

  // Level 2: bounded DP over the survivors with the threshold as target.
  double best_exact = kNegInf;
  size_t best_m = static_cast<size_t>(-1);
  if (!ws.candidates.empty()) {
    ws.tmp.resize(ws.candidates.size());
    ws.exact.resize(ws.candidates.size());
    local.dp_early_exits = bank_->ScanCandidatesBounded(
        symbols, ws.candidates, log_t, ws.tmp.data(), ws.exact.data(),
        ws.margins, &local.checkpoints);
    for (size_t j = 0; j < ws.candidates.size(); ++j) {
      const size_t m = ws.candidates[j];
      results[m] = ws.tmp[j];
      if (ws.exact[j] && ws.tmp[j].log_sim > best_exact) {
        best_exact = ws.tmp[j].log_sim;
        best_m = m;
      }
    }
  }

  // Residual pass: the per-sequence maximum must be exact even when it
  // falls below the threshold (best_log_sim is a reported output).
  std::vector<uint8_t>& state = ws.model_exact;  // 0 pruned, 1 abandoned,
  state.assign(k, 0);                            // 2 exact
  for (size_t j = 0; j < ws.candidates.size(); ++j) {
    state[ws.candidates[j]] = ws.exact[j] ? 2 : 1;
  }

  // When nothing is exactly known yet (common below the threshold: every
  // model was pruned or abandoned), scan the single highest-bound model
  // exactly first. It is the likeliest true max, and the score it
  // establishes retires almost every remaining bound before the sweep
  // below even starts. Ties break to the lowest index (strict >), so the
  // choice is deterministic.
  if (best_exact == kNegInf) {
    // Argmax over the raw integer maxima (4 bytes per model, not the 24
    // of a result slot); any deterministic seed rule preserves exactness,
    // this one is just the cheapest.
    size_t m0 = static_cast<size_t>(-1);
    int32_t z0 = std::numeric_limits<int32_t>::min();
    for (size_t m = 0; m < k; ++m) {
      if (state[m] != 2 && ws.acc[m] > z0) {
        z0 = ws.acc[m];
        m0 = m;
      }
    }
    if (m0 != static_cast<size_t>(-1)) {
      ws.candidates.assign(1, static_cast<uint32_t>(m0));
      ws.margins.assign(1, SeqMargin(*bank_, m0, ws));
      ws.tmp.resize(1);
      ws.exact.resize(1);
      // A -inf target can never abandon, so the result is exact.
      bank_->ScanCandidatesBounded(symbols, ws.candidates, kNegInf,
                                   ws.tmp.data(), ws.exact.data(), ws.margins,
                                   &local.checkpoints);
      results[m0] = ws.tmp[0];
      state[m0] = 2;
      ++local.residual_rescans;
      if (ws.tmp[0].log_sim > best_exact) {
        best_exact = ws.tmp[0].log_sim;
        best_m = m0;
      }
    }
  }

  // Residual sweep, ascending model index: any model whose recorded
  // bound still beats the best exactly-known score is refined — the
  // full-length cap Kadane on the fine int16 grid (every window closes
  // inside the "prefix", the tightest bound the tier can express), or
  // the fine positional sum when level 1.5 is disabled — and dropped if
  // the refined bound no longer beats the best. Survivors batch into
  // growing chunks re-scanned with the running best as the abandon
  // target. The dense Kadane bound is tight enough that almost nothing
  // survives the `> best_exact` test, so visiting order no longer
  // matters the way it did for a positional-sum bound: a plain index
  // sweep replaces the old bound-ordered heap. It is deterministic by
  // construction, and best_exact only ever grows, so a model passed
  // over earlier stays correctly passed over. The true-max model can be
  // neither dropped (its bound ≥ its score ≥ best_exact) nor abandoned
  // (any admissible mid-scan bound on it is ≥ its score ≥ the target),
  // so the final max is exact. Chunks grow 4 → 8 → 16 because the first
  // chunk runs at the loosest target and every exact score it produces
  // tightens the target for the rest. Sequences that joined something
  // rarely get here at all: best_exact ≥ log_t then, and every
  // non-exact bound is < log_t.
  size_t chunk_cap = 4;
  size_t sweep = 0;
  // For still-pruned models (state 0) the slot value is UbFromZ(acc[m]),
  // so the "bound still beats best_exact" test collapses to one int32
  // compare against a floor recomputed whenever best_exact grows;
  // abandoned lanes (state 1, rare) carry refined DP bounds and keep the
  // double compare.
  int32_t z_floor = ZBoundFloor(best_exact, up, /*strict=*/true);
  while (sweep < k) {
    ws.candidates.clear();
    ws.margins.clear();
    for (; sweep < k && ws.candidates.size() < chunk_cap; ++sweep) {
      const size_t m = sweep;
      const uint8_t st = state[m];
      if (st == 2) continue;
      if (st == 0 ? ws.acc[m] < z_floor
                  : !(results[m].log_sim > best_exact)) {
        continue;
      }
      double refined = results[m].log_sim;
      if (prefix > 0) {
        const double ubf =
            L15Bound(*bank_, m, 0.0, ws.seq_codes.size(), s, ws);
        if (ubf < refined) refined = ubf;
      } else {
        const double ub1f = OnDemandUb1(*bank_, m, symbols, s, ws);
        if (ub1f < refined) refined = ub1f;
      }
      if (!(refined > best_exact)) {
        // The refined bound is ≤ the recorded one (we only ever minimize),
        // so it stays < log_t: no join decision can change.
        results[m] = SimilarityResult{refined, 0, 0};
        continue;
      }
      ws.candidates.push_back(static_cast<uint32_t>(m));
      ws.margins.push_back(SeqMargin(*bank_, m, ws));
    }
    if (ws.candidates.empty()) continue;  // everything refined away
    ws.tmp.resize(ws.candidates.size());
    ws.exact.resize(ws.candidates.size());
    local.dp_early_exits += bank_->ScanCandidatesBounded(
        symbols, ws.candidates, best_exact, ws.tmp.data(), ws.exact.data(),
        ws.margins, &local.checkpoints);
    for (size_t j = 0; j < ws.candidates.size(); ++j) {
      const size_t m = ws.candidates[j];
      // Abandoned lanes leave a refined admissible bound (< best_exact at
      // chunk start, hence < log t) in the slot; exact lanes leave the
      // true result, which is ≤ its bound < log t — no new joins either
      // way.
      results[m] = ws.tmp[j];
      if (ws.exact[j]) {
        ++local.residual_rescans;
        if (ws.tmp[j].log_sim > best_exact) {
          best_exact = ws.tmp[j].log_sim;
          best_m = m;
        }
      }
    }
    z_floor = ZBoundFloor(best_exact, up, /*strict=*/true);
    chunk_cap = std::min<size_t>(chunk_cap * 2, 16);
  }

  if (best_m != static_cast<size_t>(-1)) {
    RecordSlack(UbFromZ(ws.acc[best_m], up), best_exact);
  }
  RecordMetrics(local);
  if (stats) *stats = local;
}

int32_t ScanPrefilter::BestModel(std::span<const SymbolId> symbols,
                                 double* best_log_sim,
                                 PrefilterScanStats* stats,
                                 size_t exclude_model) const {
  const size_t k = bank_->num_models();
  PrefilterScanStats local;
  local.models_total = k;
  double best = kNegInf;
  int32_t best_pos = -1;
  if (k == 0 || symbols.empty() || (k == 1 && exclude_model == 0)) {
    // Empty sequences score -inf everywhere; the exhaustive first-strict-max
    // loop never fires on -inf, so the answer is "no model" either way.
    if (best_log_sim) *best_log_sim = best;
    if (stats) *stats = local;
    return best_pos;
  }
  if (symbols.size() >= kMaxBoundedLen) {
    // Pathological lengths could overflow the int32 Kadane sums: fall
    // back to the exhaustive scan plus the same first-strict-max argmax
    // loop the unfiltered path uses.
    Workspace& ws = GetWorkspace();
    ws.tmp.resize(k);
    bank_->ScanAll(symbols, ws.tmp.data());
    for (size_t m = 0; m < k; ++m) {
      if (m == exclude_model) continue;
      if (ws.tmp[m].log_sim > best) {
        best = ws.tmp[m].log_sim;
        best_pos = static_cast<int32_t>(m);
      }
    }
    if (best_log_sim) *best_log_sim = best;
    if (stats) *stats = local;
    return best_pos;
  }

  Workspace& ws = GetWorkspace();
  const SigShape s = ShapeOf(*bank_, symbols.size());
  const size_t prefix = std::min(l15_prefix_, symbols.size());
  CountCodes(symbols, s, ws);
  ComputeAllBounds(*bank_, s, ws);
  const double up = BoundScale(*bank_);

  std::vector<double>& exact_value = ws.model_value;
  std::vector<uint8_t>& have_exact = ws.model_exact;
  exact_value.assign(k, kNegInf);
  have_exact.assign(k, 0);
  double best_bound = kNegInf;

  // The highest-bound model is scanned first, alone and with an
  // un-abandonable -inf target: it is usually the argmax, and its exact
  // score is the tightest possible starting target for everything else.
  // The argmax runs over the raw integer Kadane maxima (conversion is
  // monotone, so this is the highest bound too); ties break to the
  // lowest index (strict >), so the seed choice is deterministic.
  size_t m0 = static_cast<size_t>(-1);
  int32_t z0 = std::numeric_limits<int32_t>::min();
  for (size_t m = 0; m < k; ++m) {
    if (m == exclude_model) continue;
    if (ws.acc[m] > z0) {
      z0 = ws.acc[m];
      m0 = m;
    }
  }
  ws.candidates.assign(1, static_cast<uint32_t>(m0));
  ws.margins.assign(1, SeqMargin(*bank_, m0, ws));
  ws.tmp.resize(1);
  ws.exact.resize(1);
  bank_->ScanCandidatesBounded(symbols, ws.candidates, kNegInf, ws.tmp.data(),
                               ws.exact.data(), ws.margins,
                               &local.checkpoints);
  exact_value[m0] = ws.tmp[0].log_sim;
  have_exact[m0] = 1;
  if (ws.tmp[0].log_sim > best) {
    best = ws.tmp[0].log_sim;
    best_bound = UbFromZ(ws.acc[m0], up);
  }

  // Remaining models run through the same ascending-index sweep as the
  // threshold scan's residual pass, with two differences: a model whose
  // bound TIES the running best must still be scanned (it could attain
  // the best and win the ascending-index tie-break), so drops are
  // strict `<`; and every survivor is refined (the full-length cap
  // Kadane on the fine int16 grid, or the fine positional sum when
  // level 1.5 is disabled) before joining a chunk. The true argmax can
  // be neither dropped (its bound ≥ its score ≥ best) nor abandoned
  // (any admissible mid-scan bound on it is ≥ its score ≥ the target),
  // so the maximum is exact.
  size_t chunk_cap = 4;
  size_t sweep = 0;
  // Non-strict floor: a bound that TIES the running best must still be
  // refined (the tie could win the ascending-index tie-break).
  int32_t z_floor = ZBoundFloor(best, up, /*strict=*/false);
  while (sweep < k) {
    ws.candidates.clear();
    ws.margins.clear();
    for (; sweep < k && ws.candidates.size() < chunk_cap; ++sweep) {
      const size_t m = sweep;
      if (m == exclude_model || m == m0) continue;
      if (ws.acc[m] < z_floor) continue;
      if (prefix > 0) {
        const double ubf =
            L15Bound(*bank_, m, 0.0, ws.seq_codes.size(), s, ws);
        if (ubf < best) {  // strict: a tie could still win the argmax
          ++local.l15_pruned;
          continue;
        }
      } else {
        const double ub1f = OnDemandUb1(*bank_, m, symbols, s, ws);
        if (ub1f < best) continue;
      }
      ws.candidates.push_back(static_cast<uint32_t>(m));
      ws.margins.push_back(SeqMargin(*bank_, m, ws));
    }
    if (ws.candidates.empty()) continue;
    ws.tmp.resize(ws.candidates.size());
    ws.exact.resize(ws.candidates.size());
    local.dp_early_exits += bank_->ScanCandidatesBounded(
        symbols, ws.candidates, best, ws.tmp.data(), ws.exact.data(),
        ws.margins, &local.checkpoints);
    for (size_t j = 0; j < ws.candidates.size(); ++j) {
      if (!ws.exact[j]) continue;  // True score < best: cannot be argmax.
      const uint32_t m = ws.candidates[j];
      exact_value[m] = ws.tmp[j].log_sim;
      have_exact[m] = 1;
      if (ws.tmp[j].log_sim > best) {
        best = ws.tmp[j].log_sim;
        best_bound = UbFromZ(ws.acc[m], up);
      }
    }
    z_floor = ZBoundFloor(best, up, /*strict=*/false);
    chunk_cap = std::min<size_t>(chunk_cap * 2, 16);
  }
  const size_t eligible = exclude_model < k ? k - 1 : k;
  local.candidates_skipped =
      eligible -
      static_cast<size_t>(
          std::count(have_exact.begin(), have_exact.end(), uint8_t{1})) -
      local.dp_early_exits;

  // First model (ascending index) whose exact score equals the exact max —
  // identical to the exhaustive first-strict-max loop, which also leaves
  // best_pos at -1 when every score is -inf (or NaN).
  if (best > kNegInf) {
    for (size_t m = 0; m < k; ++m) {
      if (have_exact[m] && exact_value[m] == best) {
        best_pos = static_cast<int32_t>(m);
        break;
      }
    }
    RecordSlack(best_bound, best);
  }
  RecordMetrics(local);
  if (best_log_sim) *best_log_sim = best;
  if (stats) *stats = local;
  return best_pos;
}

PrefilterWorkspaceProbe ScanPrefilter::ProbeThreadWorkspaceForTesting() {
  Workspace& ws = GetWorkspace();
  PrefilterWorkspaceProbe p;
  p.stamp = ws.stamp.data();
  p.count = ws.count.data();
  p.cols = ws.cols.data();
  p.acc = ws.acc.data();
  p.tmp = ws.tmp.data();
  return p;
}

}  // namespace cluseq
