#include "core/cluster.h"

// Cluster is header-only today; this translation unit anchors the type so
// future non-inline members have a home and the library layout stays stable.

namespace cluseq {}  // namespace cluseq
