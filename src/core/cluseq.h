// The CLUSEQ clustering algorithm (paper §4).
//
// Starting from k initial clusters seeded from the unclustered pool, each
// iteration (1) generates new clusters from unclustered sequences at a pace
// set by the growth factor f, (2) re-examines every sequence against every
// cluster, joining all clusters whose similarity exceeds the threshold t and
// feeding the maximizing segment back into the joined cluster's PST,
// (3) consolidates heavily-overlapped clusters (smallest first; a cluster
// whose unique-member count is too small is dismissed), and (4) optionally
// adjusts t toward the histogram-valley estimate. The process stops when the
// clustering no longer changes.
//
// Clusters may overlap and some sequences may remain unclustered (outliers);
// both are intended behaviors of the model.

#ifndef CLUSEQ_CORE_CLUSEQ_H_
#define CLUSEQ_CORE_CLUSEQ_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/cluster.h"
#include "obs/perf_counters.h"
#include "pst/frozen_bank.h"
#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "seq/background_model.h"
#include "seq/sequence.h"
#include "seq/sequence_store.h"
#include "util/cancellation.h"
#include "util/rng.h"
#include "util/status.h"

namespace cluseq {

namespace obs {
struct RunReport;  // obs/run_report.h; owned by CluseqClusterer.
}  // namespace obs

struct ClustererCheckpoint;  // core/checkpoint.h; used by Run() internally.
class ThresholdAdjuster;     // core/threshold.h.

/// Order in which sequences are examined during re-clustering (§6.3).
enum class VisitOrder {
  kFixed,         ///< By sequence id; identical order every iteration.
  kRandom,        ///< A fresh random permutation per iteration.
  kClusterBased,  ///< Members of the same previous cluster visited together.
};

struct CluseqOptions {
  /// k: number of clusters generated at the first iteration (paper default 1).
  size_t initial_clusters = 1;

  /// t: similarity threshold in natural units (>= 1). Compared against
  /// SIM_S(σ) — internally log t vs log SIM.
  double similarity_threshold = 1.0005;

  /// When true (default), the initial t is estimated from the data instead
  /// of `similarity_threshold`: a small sample of sequences is modeled by
  /// single-sequence PSTs and log t starts at a quantile of their pairwise
  /// similarities. The paper's fixed default presumes its weak-signal
  /// datasets (cross-cluster SIM < 2); on stronger data a far-too-low start
  /// lets iteration 1 collapse everything into one self-sustaining mega
  /// cluster. Set false to start exactly at `similarity_threshold` (the
  /// Table 6 sensitivity experiment does this).
  bool auto_initial_threshold = true;

  /// Quantile of sample pairwise similarities used by the auto start.
  double auto_threshold_quantile = 0.5;

  /// Rebuild each cluster's PST from its current membership at the start of
  /// every iteration (purification; see DESIGN.md). The paper's PSTs only
  /// ever accumulate counts, which freezes early pollution in place; set
  /// false to reproduce that cumulative behavior (used by the order
  /// sensitivity ablation).
  bool rebuild_each_iteration = true;

  /// The paper's §4.2 scan examines sequences one at a time and feeds each
  /// join's maximizing segment into the joined cluster's PST *within* the
  /// scan, so later sequences in the same iteration are scored against
  /// already-updated summaries — the effect the §6.3 order study measures.
  /// Default off: each iteration freezes every cluster summary into a
  /// compiled automaton (FrozenPst), scores all sequences against the
  /// snapshots in parallel, and applies joins and segment absorption
  /// afterwards. Scores are bit-for-bit what the live path produces against
  /// the same summaries, but the iteration becomes order-independent (the
  /// visit order only matters when this is true) and parallel across
  /// sequences rather than across clusters.
  bool within_scan_updates = false;

  /// Score each sequence against *all* cluster snapshots in one interleaved
  /// pass over its symbols (FrozenBank::ScanAll) instead of k serial
  /// automaton scans. Applies to the batch re-cluster scan, threshold
  /// estimation, seeding, and Classify(); results are bit-for-bit identical
  /// either way, so this is purely a performance switch (kept as an option
  /// for benchmarking and as a fallback). Ignored by the §4.2
  /// within-scan-updates mode, which must score against live trees.
  bool batched_scan = true;

  /// Multi-level candidate pruning in front of the banked scan
  /// (ScanPrefilter, DESIGN.md §14): admissible block/signature/prefix-DP
  /// upper bounds skip clusters that provably cannot reach the threshold,
  /// and survivors run an early-abandoning DP. Outputs are bit-for-bit
  /// identical with the prefilter on or off — every skip is justified by
  /// an admissible bound — so, like batched_scan, this is purely a
  /// performance switch (the off path doubles as the correctness oracle).
  /// Requires batched_scan; inactive in within-scan-updates mode. While
  /// the §4.6 threshold adjuster is live, the scan prunes against the
  /// censored floor log t − adjust_bound_window instead of log t, so the
  /// adjuster's histogram sees exact scores (see adjust_bound_window).
  bool prefilter = true;

  /// Width W of the §4.6 histogram window when the prefilter runs during
  /// adjusting iterations: scores below log t − W are censored from the
  /// adjuster's histogram (in both prefiltered and exhaustive runs, so the
  /// two stay bit-for-bit identical), and the prefiltered scan only prunes
  /// pairs whose bound falls below that floor. Larger W = more of the
  /// score distribution visible to the valley finder but less pruning
  /// while t still moves. Algorithmic: affects the adjuster trajectory, so
  /// it participates in the checkpoint option fingerprint. Must be > 0.
  double adjust_bound_window = 64.0;

  /// Byte budget for the bank's per-model signature tables, which decide
  /// the prefilter bound order: trigram caps within budget, else bigram,
  /// else per-symbol maxima (FrozenBank::SelectSignatureTier). Purely a
  /// perf/memory trade — any tier is admissible. 0 forces the unigram
  /// tier.
  size_t signature_budget_bytes = FrozenBank::kDefaultSignatureBudgetBytes;

  /// Symbols covered by the prefilter's level-1.5 truncated-prefix DP
  /// bound (ScanPrefilter::kDefaultL15Prefix = 96); 0 disables that level.
  /// Purely a perf switch — the bound is admissible at any prefix.
  size_t prefilter_prefix = 96;

  /// c: significance threshold for PST nodes (paper rule of thumb: >= 30).
  uint64_t significance_threshold = 30;

  /// Sample size multiplier: m = multiplier × k_n (paper uses 5).
  double sample_multiplier = 5.0;

  /// Enables automatic adjustment of t (§4.6).
  bool adjust_threshold = true;

  /// Histogram granularity for the t adjustment.
  size_t histogram_buckets = 100;

  /// Consolidation dismisses clusters with fewer unique members than this;
  /// 0 means "use significance_threshold" (the paper's "say, < c").
  size_t min_unique_members = 0;

  /// Hard cap on iterations (the paper iterates to a fixed point; this
  /// guards pathological oscillation).
  size_t max_iterations = 50;

  VisitOrder visit_order = VisitOrder::kFixed;

  /// Threads used across the iteration: scan, seeding, re-freeze, PST
  /// rebuild, and the batch join/absorb phase. 0 = auto-detect
  /// (HardwareThreads()); resolved once at construction, so the RunReport
  /// echoes the effective width. Clusterings are bit-for-bit identical
  /// across thread counts.
  size_t num_threads = 1;

  /// Seed for all randomized steps (sampling, random visit order).
  uint64_t rng_seed = 42;

  /// Per-cluster PST configuration (depth bound, memory budget, pruning
  /// strategy, smoothing). Its significance_threshold is overridden by the
  /// field above so there is a single source of truth for c.
  PstOptions pst;

  /// Emit per-iteration progress via CLUSEQ_LOG(kInfo).
  bool verbose = false;

  /// Directory for crash-safe checkpoints (DESIGN.md §16). Empty (default)
  /// disables checkpointing entirely — the run pays nothing, not even the
  /// per-boundary state encode.
  std::string checkpoint_dir;

  /// Write a checkpoint every N completed iterations (the boundary state
  /// is still captured in memory every iteration so a cancellation can
  /// flush the newest one). 0 disables checkpointing even when a directory
  /// is set.
  size_t checkpoint_every = 1;

  /// Resume from the newest loadable checkpoint in `checkpoint_dir`. A
  /// missing directory or an empty one falls back to a fresh start with a
  /// warning; a checkpoint written against a different corpus or different
  /// algorithmic options fails with FailedPrecondition. Requires
  /// `checkpoint_dir` to be set.
  bool resume = false;

  /// When resuming, refuse to fall back from a corrupt newest checkpoint
  /// to the previous one: fail with Status::Corruption instead.
  bool checkpoint_strict = false;

  /// Optional cooperative-cancellation token (not owned; must outlive the
  /// run). Run() polls it at phase boundaries; once it fires, the run
  /// abandons the in-flight iteration, flushes the newest boundary
  /// checkpoint (when checkpointing), and returns OK with
  /// ClusteringResult::interrupted set and the last completed iteration's
  /// clustering. Resuming afterwards replays the abandoned iteration, so
  /// the eventual final clustering is bit-for-bit what an uninterrupted
  /// run produces.
  const CancellationToken* cancellation = nullptr;

  Status Validate() const;
};

/// Per-iteration diagnostics.
struct IterationStats {
  size_t iteration = 0;
  size_t new_clusters = 0;
  size_t consolidated = 0;
  size_t clusters_after = 0;
  size_t unclustered = 0;
  double log_threshold = 0.0;
  double seconds = 0.0;
  /// Cluster summaries compiled to snapshots this iteration. Stays 0 on a
  /// fixed-point iteration (no tree changed), thanks to the dirty-bit
  /// incremental re-freeze.
  size_t refrozen_clusters = 0;
  /// Wall time of the re-cluster similarity scan (scoring only, excluding
  /// the join/absorb apply phase).
  double scan_seconds = 0.0;
  /// Live PST nodes across all clusters at the end of the iteration.
  size_t pst_nodes_total = 0;
  /// Nodes pruned from cluster PSTs during this iteration (all §5.1
  /// strategies combined; rebuilt trees count their own pruning).
  size_t pst_pruned_total = 0;
  /// Wall time of cluster seeding (PST rebuild + new-cluster generation).
  double seed_seconds = 0.0;
  /// Wall time of the join/absorb apply phase (0 in §4.2 within-scan mode,
  /// where joins are applied inside the scan itself).
  double join_seconds = 0.0;
  /// Wall time of consolidation + membership view rebuild.
  double consolidate_seconds = 0.0;
  /// Fraction of the n × k sequence-cluster pairs the prefilter skipped
  /// without touching any model rows (0 when the prefilter was inactive).
  double prefilter_skip_ratio = 0.0;
  /// Pairs whose DP was abandoned mid-sequence by the bounded scan.
  size_t prefilter_dp_early_exits = 0;
  /// Pairs pruned by the level-1.5 truncated-prefix DP bound (a subset of
  /// the skipped pairs counted in prefilter_skip_ratio).
  size_t prefilter_l15_pruned = 0;
  /// Level-2 bound checks actually executed by the adaptive schedule.
  size_t prefilter_checkpoints = 0;
  /// Per-phase perf-counter and getrusage deltas (seed / scan / join /
  /// consolidate / adjust_t). Counters are empty when perf_event_open is
  /// unavailable; the rusage fields are always filled. Observability only —
  /// never feeds back into clustering decisions, so determinism tests that
  /// compare the algorithmic fields above stay untouched.
  std::vector<obs::PhasePerf> phase_perf;
};

struct ClusteringResult {
  /// Member sequence indices of each final cluster (clusters may overlap).
  std::vector<std::vector<size_t>> clusters;

  /// For each sequence: index into `clusters` of the joined cluster with the
  /// highest similarity, or -1 for outliers.
  std::vector<int32_t> best_cluster;

  /// For each sequence: highest log SIM against any final cluster (whether
  /// or not it exceeded the threshold). -inf when there were no clusters.
  std::vector<double> best_log_sim;

  /// Final similarity threshold, log and natural units.
  double final_log_threshold = 0.0;
  double final_threshold() const;

  size_t iterations = 0;
  size_t num_unclustered = 0;
  std::vector<IterationStats> iteration_stats;

  /// True when the run was stopped by the cancellation token before
  /// reaching its fixed point. The clustering fields then reflect the last
  /// *completed* iteration (never a half-executed one), and a checkpointed
  /// run can be resumed to completion.
  bool interrupted = false;

  /// True when this run resumed from a checkpoint instead of starting
  /// fresh.
  bool resumed_from_checkpoint = false;

  size_t num_clusters() const { return clusters.size(); }
};

class CluseqClusterer {
 public:
  /// `db` must outlive the clusterer. Any SequenceStore works: the in-RAM
  /// SequenceDatabase or the mmap-backed SeqDbReader — the loop only ever
  /// reads symbol spans, lengths, and the alphabet.
  CluseqClusterer(const SequenceStore& db, CluseqOptions options);
  ~CluseqClusterer();  // Out of line: report_ points to an incomplete type.

  /// Runs the full iterative algorithm. Idempotent per instance: a second
  /// call restarts from scratch.
  Status Run(ClusteringResult* result);

  /// Machine-readable record of the last Run(): options echo, per-iteration
  /// stats and metrics snapshots, final metrics. Null before the first run;
  /// serialize with obs::WriteRunReportJson (the CLI's --metrics_json).
  const obs::RunReport* report() const { return report_.get(); }

  /// Final cluster states (PSTs + members); valid after Run(). Useful for
  /// classifying new sequences against the discovered clusters.
  const std::vector<Cluster>& clusters() const { return clusters_; }
  const BackgroundModel& background() const { return background_; }

  /// Classifies a new sequence: returns the index of the most similar final
  /// cluster and its log similarity, or -1 when below the final threshold.
  /// Scores against the frozen snapshots cached by Run(), so repeated calls
  /// pay no tree-walk cost.
  int32_t Classify(std::span<const SymbolId> symbols,
                   double* log_sim = nullptr) const;
  int32_t Classify(const Sequence& seq, double* log_sim = nullptr) const {
    return Classify(std::span<const SymbolId>(seq.symbols()), log_sim);
  }

 private:
  size_t PlanNewClusters(size_t iteration) const;
  double EstimateInitialLogThreshold();
  void GenerateNewClusters(size_t count);
  // Compiles a snapshot for every cluster whose tree changed since its last
  // freeze (in parallel); untouched clusters keep their cached snapshot.
  // Returns how many clusters were (re)compiled.
  size_t RefreshFrozen();
  // The per-cluster cached snapshots, in cluster order. Call after
  // RefreshFrozen(); entries are null only for never-frozen clusters.
  std::vector<std::shared_ptr<const FrozenPst>> Snapshots() const;
  // Rebuilds each cluster's PST from its current members (purification).
  void RebuildClusterPsts();
  // Re-examines every sequence; fills joined_, all_log_sims_.
  void Recluster();
  std::vector<size_t> VisitOrderIndices();
  // Returns the number of clusters dismissed.
  size_t Consolidate();
  void RebuildMembershipViews();
  std::vector<uint64_t> MembershipFingerprint() const;
  // Serializes the complete iteration-boundary state (checkpoint.h).
  ClustererCheckpoint BuildCheckpoint(
      uint64_t iteration, const ThresholdAdjuster& adjuster,
      const std::vector<uint64_t>& prev_fingerprint,
      bool have_prev_fingerprint) const;
  // Reinstates the clusterer from a decoded checkpoint after validating
  // the options/corpus fingerprints. On failure the clusterer state is
  // unspecified but the next fresh Run() reinitializes everything.
  Status RestoreFromCheckpoint(const ClustererCheckpoint& ckpt,
                               ThresholdAdjuster* adjuster,
                               std::vector<uint64_t>* prev_fingerprint,
                               bool* have_prev_fingerprint);

  const SequenceStore& db_;
  CluseqOptions options_;
  BackgroundModel background_;
  Rng rng_;
  std::vector<Cluster> clusters_;
  // All cluster snapshots packed into one scoring arena, re-assembled each
  // iteration (only dirty models are rewritten) and kept current at the end
  // of Run() so Classify() is a single interleaved scan.
  FrozenBank bank_;
  uint32_t next_cluster_id_ = 0;
  double log_t_ = 0.0;
  // Per-iteration scan diagnostics (reset in Run()'s loop).
  size_t refrozen_this_iter_ = 0;
  double scan_seconds_this_iter_ = 0.0;
  double join_seconds_this_iter_ = 0.0;
  // Whether the prefilter may prune scans (fixed per run: prefilter ∧
  // batched_scan ∧ ¬within_scan_updates).
  bool prefilter_active_ = false;
  // The scan's pruning target for the current iteration: log_t_ once the
  // adjuster is frozen (or disabled), log_t_ − adjust_bound_window while
  // it is live — the same floor the adjuster censors its histogram at.
  double scan_target_ = 0.0;
  size_t prefilter_pairs_this_iter_ = 0;
  size_t prefilter_skipped_this_iter_ = 0;
  size_t prefilter_early_exits_this_iter_ = 0;
  size_t prefilter_l15_this_iter_ = 0;
  size_t prefilter_checkpoints_this_iter_ = 0;
  // Whole-run prefilter aggregates for the run report.
  size_t run_prefilter_pairs_ = 0;
  size_t run_prefilter_skipped_ = 0;
  size_t run_prefilter_early_exits_ = 0;
  size_t run_prefilter_l15_ = 0;
  size_t run_prefilter_checkpoints_ = 0;
  // Per-phase perf/rusage sampling; drained into IterationStats each
  // iteration. Opens the process-wide PerfCounterSet lazily on first use.
  obs::PhasePerfCollector phase_perf_;
  std::unique_ptr<obs::RunReport> report_;

  // Per-sequence (cluster position, log sim, segment) of joined clusters,
  // refreshed every iteration.
  struct Joined {
    uint32_t cluster_id;
    double log_sim;
  };
  std::vector<std::vector<Joined>> joined_;
  std::vector<double> best_log_sim_;
  std::vector<int32_t> prev_best_cluster_;  // For cluster-based order.
  std::vector<double> all_log_sims_;
  std::vector<size_t> unclustered_;
  size_t prev_new_ = 0;
  size_t prev_consolidated_ = 0;
};

/// Convenience one-shot entry point.
Status RunCluseq(const SequenceStore& db, const CluseqOptions& options,
                 ClusteringResult* result);

}  // namespace cluseq

#endif  // CLUSEQ_CORE_CLUSEQ_H_
