#include "core/similarity.h"

#include <limits>
#include <utility>
#include <vector>

namespace cluseq {

namespace {

// The §4.3 single-scan recurrence in log space, shared by the live and
// frozen engines so the DP itself cannot drift between them:
//   Y_i = max(Y_{i-1} + X_i, X_i)   (best segment ending at i)
//   Z_i = max(Z_{i-1}, Y_i)         (best segment ending ≤ i)
// `ratio(i)` supplies log X_i.
template <typename RatioFn>
SimilarityResult SegmentMaxScan(size_t l, RatioFn&& ratio) {
  SimilarityResult result;
  if (l == 0) {
    result.log_sim = -std::numeric_limits<double>::infinity();
    return result;
  }
  double y = 0.0;           // log Y_i
  size_t y_begin = 0;       // Start of the segment realizing Y_i.
  double z = -std::numeric_limits<double>::infinity();  // log Z_i
  for (size_t i = 0; i < l; ++i) {
    const double x = ratio(i);
    if (i == 0 || y + x < x) {
      y = x;  // Restart: the best segment ending at i is {s_i} alone.
      y_begin = i;
    } else {
      y += x;  // Extend the running segment.
    }
    if (y > z) {
      z = y;
      result.best_begin = y_begin;
      result.best_end = i + 1;
    }
  }
  result.log_sim = z;
  return result;
}

}  // namespace

double ContextLogRatio(const Pst& pst, const BackgroundModel& background,
                       std::span<const SymbolId> symbols, size_t i) {
  return pst.LogConditionalProbability(symbols.subspan(0, i), symbols[i]) -
         background.LogProbability(symbols[i]);
}

SimilarityResult ComputeSimilarity(const Pst& pst,
                                   const BackgroundModel& background,
                                   std::span<const SymbolId> symbols) {
  return SegmentMaxScan(symbols.size(), [&](size_t i) {
    return ContextLogRatio(pst, background, symbols, i);
  });
}

SimilarityResult ComputeSimilarity(const FrozenPst& pst,
                                   std::span<const SymbolId> symbols) {
  FrozenPst::State state = FrozenPst::kRootState;
  return SegmentMaxScan(symbols.size(), [&](size_t i) {
    const SymbolId s = symbols[i];
    const double x = pst.LogRatio(state, s);
    state = pst.Step(state, s);
    return x;
  });
}

SimilarityResult ComputeSimilarityBruteForce(
    const Pst& pst, const BackgroundModel& background,
    std::span<const SymbolId> symbols) {
  SimilarityResult result;
  const size_t l = symbols.size();
  if (l == 0) {
    result.log_sim = -std::numeric_limits<double>::infinity();
    return result;
  }
  // Per-position log ratios; conditional probabilities always use the full
  // preceding context, regardless of the segment boundary.
  std::vector<double> x(l);
  for (size_t i = 0; i < l; ++i) {
    x[i] = ContextLogRatio(pst, background, symbols, i);
  }
  result.log_sim = -std::numeric_limits<double>::infinity();
  for (size_t j = 0; j < l; ++j) {
    double acc = 0.0;
    for (size_t i = j; i < l; ++i) {
      acc += x[i];
      if (acc > result.log_sim) {
        result.log_sim = acc;
        result.best_begin = j;
        result.best_end = i + 1;
      }
    }
  }
  return result;
}

}  // namespace cluseq
