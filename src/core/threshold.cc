#include "core/threshold.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "util/histogram.h"

namespace cluseq {

ThresholdAdjuster::ThresholdAdjuster(size_t buckets, double min_log_t,
                                     double max_up_step)
    : buckets_(std::max<size_t>(buckets, 4)),
      min_log_t_(min_log_t),
      max_up_step_(max_up_step) {}

ThresholdUpdate ThresholdAdjuster::Adjust(const std::vector<double>& log_sims,
                                          double current_log_t,
                                          double censor_floor) {
  ThresholdUpdate update;
  update.new_log_t = current_log_t;
  if (frozen_) return update;

  std::vector<double> finite_sims;
  finite_sims.reserve(log_sims.size());
  for (double v : log_sims) {
    if (std::isfinite(v) && v >= censor_floor) finite_sims.push_back(v);
  }
  if (finite_sims.size() < 8) return update;
  // Clamp the histogram domain to the inner [1%, 99%] quantiles: a handful
  // of extreme self-similarities would otherwise stretch the domain and
  // squeeze the informative region into a few buckets. Two nth_element
  // selections (the second over the suffix the first already partitioned
  // above lo) give exactly the order statistics a full sort would, in O(n)
  // — this runs once per iteration over n·k scores.
  const size_t lo_pos = finite_sims.size() / 100;
  const size_t hi_pos = finite_sims.size() - 1 - finite_sims.size() / 100;
  std::nth_element(finite_sims.begin(),
                   finite_sims.begin() + static_cast<long>(lo_pos),
                   finite_sims.end());
  const double lo = finite_sims[lo_pos];
  std::nth_element(finite_sims.begin() + static_cast<long>(lo_pos),
                   finite_sims.begin() + static_cast<long>(hi_pos),
                   finite_sims.end());
  const double hi = finite_sims[hi_pos];
  if (!(hi > lo)) return update;

  Histogram hist(lo, hi, buckets_);
  for (double v : finite_sims) hist.Add(v);
  ValleyResult valley = FindValley(hist);
  if (!valley.found) return update;

  // The paper requires t >= 1 to separate clustered sequences from outliers.
  double valley_log_t = std::max(valley.x, min_log_t_);
  update.valley_log_t = valley_log_t;

  // Freeze once t and t̂ are within 1% of each other (natural units; for
  // small deltas |log t - log t̂| is exactly the relative difference).
  if (std::abs(valley_log_t - current_log_t) <
      0.01 * std::max(1.0, std::abs(current_log_t))) {
    frozen_ = true;
    static obs::Counter& freezes =
        obs::MetricsRegistry::Get().GetCounter("threshold.freezes");
    freezes.Increment();
    return update;
  }

  // Conservative pace, taken in log space: with likelihood-ratio magnitudes
  // spanning hundreds of log units, the paper's natural-unit average
  // (t + t̂)/2 degenerates to "jump straight to t̂"; the geometric mean
  // preserves the intended halfway step at any scale (and agrees with the
  // arithmetic mean to first order when t ≈ t̂, the paper's regime).
  update.adjusted = true;
  double stepped = (current_log_t + valley_log_t) / 2.0;
  if (max_up_step_ > 0.0 && stepped > current_log_t + max_up_step_) {
    stepped = current_log_t + max_up_step_;  // Bounded upward pace.
  }
  update.new_log_t = std::max(stepped, min_log_t_);
  static obs::Counter& adjustments =
      obs::MetricsRegistry::Get().GetCounter("threshold.adjustments");
  adjustments.Increment();
  return update;
}

}  // namespace cluseq
