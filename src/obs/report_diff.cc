#include "obs/report_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "util/string_util.h"

namespace cluseq {
namespace obs {

namespace {

constexpr const char* kRunReportSchema = "cluseq.run_report.v1";
constexpr const char* kBenchSchema = "cluseq.bench.v1";

void AddValue(ReportMetrics* out, std::string key, const JsonValue& value) {
  switch (value.type) {
    case JsonValue::Type::kNumber:
      out->values.emplace_back(std::move(key), value.number);
      return;
    case JsonValue::Type::kBool:
      out->values.emplace_back(std::move(key), value.bool_value ? 1.0 : 0.0);
      return;
    case JsonValue::Type::kNull:
      // The writer maps NaN/Inf to null; surface the key as non-finite so
      // rules naming it breach instead of silently passing.
      out->non_finite.push_back(std::move(key));
      return;
    default:
      return;  // Strings and nested containers handled by the callers.
  }
}

/// Flattens every numeric/bool leaf under `value` as prefix.member[...].
void FlattenObject(ReportMetrics* out, const std::string& prefix,
                   const JsonValue& value) {
  if (!value.is_object()) return;
  for (const auto& [key, member] : value.object) {
    const std::string path = prefix.empty() ? key : prefix + "." + key;
    if (member.is_object()) {
      FlattenObject(out, path, member);
    } else {
      AddValue(out, path, member);
    }
  }
}

double SumIterationStat(const JsonValue& root, const char* field) {
  double total = 0.0;
  const JsonValue* iterations = root.Find("iterations");
  if (iterations == nullptr || !iterations->is_array()) return 0.0;
  for (const JsonValue& iteration : iterations->array) {
    const JsonValue* stats = iteration.Find("stats");
    if (stats == nullptr) continue;
    const JsonValue* value = stats->Find(field);
    if (value != nullptr && value->is_number()) total += value->number;
  }
  return total;
}

void ExtractRunReport(const JsonValue& root, ReportMetrics* out) {
  for (const char* block : {"summary", "input", "eval"}) {
    const JsonValue* value = root.Find(block);
    if (value != nullptr) FlattenObject(out, block, *value);
  }
  // Final registry state: counters and gauges under a metrics. prefix (the
  // per-iteration snapshots and the baseline are trajectory detail, not
  // diffable headline state).
  const JsonValue* final_metrics = root.Find("final_metrics");
  if (final_metrics != nullptr) {
    for (const char* kind : {"counters", "gauges"}) {
      const JsonValue* table = final_metrics->Find(kind);
      if (table == nullptr || !table->is_object()) continue;
      for (const auto& [key, member] : table->object) {
        AddValue(out, "metrics." + key, member);
      }
    }
  }
  // Derived aliases for the headline quantities CI rules gate on.
  out->values.emplace_back("scan.seconds",
                           SumIterationStat(root, "scan_seconds"));
  out->values.emplace_back("refrozen_clusters",
                           SumIterationStat(root, "refrozen_clusters"));
  const std::pair<const char*, const char*> kAliases[] = {
      {"metrics.frozen_bank.scan_symbols_per_sec", "scan.symbols_per_sec"},
      {"summary.prefilter.skip_ratio", "prefilter.skip_ratio"},
      {"summary.prefilter.l15_ratio", "prefilter.l15_ratio"},
      {"summary.prefilter.adaptive_checkpoints",
       "prefilter.adaptive_checkpoints"},
      {"summary.perf.maxrss_kb", "peak_rss_kb"},
  };
  const size_t flattened = out->values.size();
  for (const auto& [source, alias] : kAliases) {
    for (size_t i = 0; i < flattened; ++i) {
      if (out->values[i].first == source) {
        out->values.emplace_back(alias, out->values[i].second);
        break;
      }
    }
  }
}

void ExtractBench(const JsonValue& root, ReportMetrics* out) {
  for (const auto& [key, member] : root.object) {
    if (key == "schema" || key == "name" || key == "git") continue;
    if (member.is_object()) {
      FlattenObject(out, key, member);
    } else {
      AddValue(out, key, member);
    }
  }
  const JsonValue* name = root.Find("name");
  if (name != nullptr && name->is_string()) out->name = name->string_value;
}

bool EvaluateRule(const FailRule& rule, const MetricDelta& row,
                  std::string* reason) {
  const double rel = row.rel_delta;
  switch (rule.direction) {
    case FailRule::Direction::kBelow:
      if (rel < -rule.tolerance) {
        *reason = StringPrintf("dropped %.4g%% (limit -%.4g%%)", -rel * 100.0,
                               rule.tolerance * 100.0);
        return true;
      }
      return false;
    case FailRule::Direction::kAbove:
      if (rel > rule.tolerance) {
        *reason = StringPrintf("rose %.4g%% (limit +%.4g%%)", rel * 100.0,
                               rule.tolerance * 100.0);
        return true;
      }
      return false;
    case FailRule::Direction::kBoth:
      if (std::fabs(rel) > rule.tolerance) {
        *reason = StringPrintf("changed %.4g%% (limit ±%.4g%%)", rel * 100.0,
                               rule.tolerance * 100.0);
        return true;
      }
      return false;
  }
  return false;
}

std::string FormatValue(double v) {
  if (std::isnan(v)) return "nan";
  if (std::isinf(v)) return v > 0 ? "inf" : "-inf";
  return StringPrintf("%.6g", v);
}

}  // namespace

bool ReportMetrics::Lookup(std::string_view key, double* out) const {
  for (const auto& [name, value] : values) {
    if (name == key) {
      *out = value;
      return true;
    }
  }
  return false;
}

Status ExtractReportMetrics(const JsonValue& root, ReportMetrics* out) {
  *out = ReportMetrics{};
  if (!root.is_object()) {
    return Status::InvalidArgument("report: top-level JSON is not an object");
  }
  const JsonValue* schema = root.Find("schema");
  if (schema == nullptr || !schema->is_string()) {
    return Status::InvalidArgument(
        "report: missing \"schema\" key (expected cluseq.run_report.v1 or "
        "cluseq.bench.v1)");
  }
  out->schema = schema->string_value;
  if (out->schema == kRunReportSchema) {
    ExtractRunReport(root, out);
  } else if (out->schema == kBenchSchema) {
    ExtractBench(root, out);
  } else {
    return Status::InvalidArgument("report: unrecognized schema '" +
                                   out->schema + "'");
  }
  std::sort(out->values.begin(), out->values.end());
  // Duplicate keys would make the diff ambiguous; keep the first.
  out->values.erase(
      std::unique(out->values.begin(), out->values.end(),
                  [](const auto& x, const auto& y) {
                    return x.first == y.first;
                  }),
      out->values.end());
  std::sort(out->non_finite.begin(), out->non_finite.end());
  return Status::OK();
}

Status FailRule::Parse(std::string_view spec, FailRule* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return Status::InvalidArgument(
        "fail-on: expected metric:TOLERANCE, got '" + std::string(spec) +
        "'");
  }
  FailRule rule;
  rule.metric = std::string(spec.substr(0, colon));
  std::string_view tol = spec.substr(colon + 1);
  rule.direction = Direction::kBoth;
  if (tol.starts_with('-')) {
    rule.direction = Direction::kBelow;
    tol.remove_prefix(1);
  } else if (tol.starts_with('+')) {
    rule.direction = Direction::kAbove;
    tol.remove_prefix(1);
  }
  bool percent = false;
  if (tol.ends_with('%')) {
    percent = true;
    tol.remove_suffix(1);
  }
  const std::string buffer(tol);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (buffer.empty() || end != buffer.c_str() + buffer.size() ||
      !std::isfinite(value) || value < 0.0) {
    return Status::InvalidArgument(
        "fail-on: tolerance must be a non-negative number or percentage, "
        "got '" + std::string(spec) + "'");
  }
  rule.tolerance = percent ? value / 100.0 : value;
  *out = rule;
  return Status::OK();
}

std::string FailRule::ToString() const {
  const char* sign = direction == Direction::kBelow
                         ? "-"
                         : direction == Direction::kAbove ? "+" : "";
  return StringPrintf("%s:%s%.4g%%", metric.c_str(), sign,
                      tolerance * 100.0);
}

Status ComputeReportDiff(const ReportMetrics& a, const ReportMetrics& b,
                         std::span<const FailRule> rules, ReportDiff* out) {
  *out = ReportDiff{};
  if (a.schema != b.schema) {
    return Status::InvalidArgument("schema mismatch: '" + a.schema +
                                   "' vs '" + b.schema + "'");
  }
  if (!a.name.empty() && !b.name.empty() && a.name != b.name) {
    return Status::InvalidArgument("bench name mismatch: '" + a.name +
                                   "' vs '" + b.name + "'");
  }
  out->schema = a.schema;

  // Merge the two sorted key lists.
  size_t i = 0;
  size_t j = 0;
  while (i < a.values.size() || j < b.values.size()) {
    if (j >= b.values.size() ||
        (i < a.values.size() && a.values[i].first < b.values[j].first)) {
      out->only_in_a.push_back(a.values[i].first);
      ++i;
    } else if (i >= a.values.size() ||
               b.values[j].first < a.values[i].first) {
      out->only_in_b.push_back(b.values[j].first);
      ++j;
    } else {
      MetricDelta row;
      row.name = a.values[i].first;
      row.a = a.values[i].second;
      row.b = b.values[j].second;
      row.abs_delta = row.b - row.a;
      if (row.a != 0.0) {
        row.rel_delta = row.abs_delta / std::fabs(row.a);
      } else if (row.b == 0.0) {
        row.rel_delta = 0.0;
      } else {
        row.rel_delta = row.b > 0.0
                            ? std::numeric_limits<double>::infinity()
                            : -std::numeric_limits<double>::infinity();
      }
      out->rows.push_back(std::move(row));
      ++i;
      ++j;
    }
  }
  for (const std::string& key : a.non_finite) {
    out->diagnostics.push_back("non-finite (null) value in A: " + key);
  }
  for (const std::string& key : b.non_finite) {
    out->diagnostics.push_back("non-finite (null) value in B: " + key);
  }

  for (const FailRule& rule : rules) {
    auto row = std::find_if(out->rows.begin(), out->rows.end(),
                            [&](const MetricDelta& r) {
                              return r.name == rule.metric;
                            });
    if (row == out->rows.end()) {
      // A gate that cannot be evaluated must fail, not pass: name the
      // precise reason (absent vs dropped-as-null) for the CI log.
      const bool null_a = std::binary_search(a.non_finite.begin(),
                                             a.non_finite.end(), rule.metric);
      const bool null_b = std::binary_search(b.non_finite.begin(),
                                             b.non_finite.end(), rule.metric);
      std::string reason;
      if (null_a || null_b) {
        reason = StringPrintf("metric is non-finite (null) in %s",
                              null_a && null_b ? "both files"
                              : null_a         ? "file A"
                                               : "file B");
      } else {
        reason = "metric missing from one or both files";
      }
      out->breaches.push_back({rule.metric, reason});
      continue;
    }
    std::string reason;
    if (EvaluateRule(rule, *row, &reason)) {
      row->breached = true;
      out->breaches.push_back({rule.metric, reason});
    }
  }
  return Status::OK();
}

Status DiffReportFiles(const std::string& path_a, const std::string& path_b,
                       std::span<const FailRule> rules, ReportDiff* out) {
  JsonValue root_a;
  JsonValue root_b;
  CLUSEQ_RETURN_NOT_OK(ParseJsonFile(path_a, &root_a));
  CLUSEQ_RETURN_NOT_OK(ParseJsonFile(path_b, &root_b));
  ReportMetrics a;
  ReportMetrics b;
  Status status = ExtractReportMetrics(root_a, &a);
  if (!status.ok()) {
    return Status::InvalidArgument(path_a + ": " + status.message());
  }
  status = ExtractReportMetrics(root_b, &b);
  if (!status.ok()) {
    return Status::InvalidArgument(path_b + ": " + status.message());
  }
  return ComputeReportDiff(a, b, rules, out);
}

void PrintReportDiff(const ReportDiff& diff, std::ostream& out) {
  out << "schema: " << diff.schema << "\n";
  out << StringPrintf("%-44s %14s %14s %14s %10s\n", "metric", "A", "B",
                      "abs", "rel");
  for (const MetricDelta& row : diff.rows) {
    std::string rel;
    if (std::isinf(row.rel_delta)) {
      rel = row.rel_delta > 0 ? "+inf%" : "-inf%";
    } else {
      rel = StringPrintf("%+.2f%%", row.rel_delta * 100.0);
    }
    out << StringPrintf("%-44s %14s %14s %14s %10s%s\n", row.name.c_str(),
                        FormatValue(row.a).c_str(),
                        FormatValue(row.b).c_str(),
                        FormatValue(row.abs_delta).c_str(), rel.c_str(),
                        row.breached ? "  !" : "");
  }
  for (const std::string& key : diff.only_in_a) {
    out << "only in A: " << key << "\n";
  }
  for (const std::string& key : diff.only_in_b) {
    out << "only in B: " << key << "\n";
  }
  for (const std::string& diagnostic : diff.diagnostics) {
    out << "note: " << diagnostic << "\n";
  }
  for (const ReportDiff::Breach& breach : diff.breaches) {
    out << "BREACH: " << breach.metric << ": " << breach.reason << "\n";
  }
  if (diff.breaches.empty()) {
    out << "ok: no thresholds breached\n";
  }
}

}  // namespace obs
}  // namespace cluseq
