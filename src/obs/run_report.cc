#include "obs/run_report.h"

#include <algorithm>
#include <fstream>

namespace cluseq {
namespace obs {

namespace {

const char* VisitOrderName(VisitOrder order) {
  switch (order) {
    case VisitOrder::kFixed:
      return "fixed";
    case VisitOrder::kRandom:
      return "random";
    case VisitOrder::kClusterBased:
      return "cluster_based";
  }
  return "unknown";
}

const char* PruneStrategyName(PruneStrategy strategy) {
  switch (strategy) {
    case PruneStrategy::kSmallestCountFirst:
      return "smallest_count_first";
    case PruneStrategy::kLongestLabelFirst:
      return "longest_label_first";
    case PruneStrategy::kExpectedVectorFirst:
      return "expected_vector_first";
  }
  return "unknown";
}

void WriteOptions(JsonWriter& writer, const CluseqOptions& options) {
  writer.BeginObject();
  writer.KeyValue("initial_clusters", uint64_t{options.initial_clusters});
  writer.KeyValue("similarity_threshold", options.similarity_threshold);
  writer.KeyValue("auto_initial_threshold", options.auto_initial_threshold);
  writer.KeyValue("auto_threshold_quantile", options.auto_threshold_quantile);
  writer.KeyValue("rebuild_each_iteration", options.rebuild_each_iteration);
  writer.KeyValue("within_scan_updates", options.within_scan_updates);
  writer.KeyValue("batched_scan", options.batched_scan);
  writer.KeyValue("prefilter", options.prefilter);
  writer.KeyValue("adjust_bound_window", options.adjust_bound_window);
  writer.KeyValue("signature_budget_bytes",
                  uint64_t{options.signature_budget_bytes});
  writer.KeyValue("prefilter_prefix", uint64_t{options.prefilter_prefix});
  writer.KeyValue("significance_threshold",
                  uint64_t{options.significance_threshold});
  writer.KeyValue("sample_multiplier", options.sample_multiplier);
  writer.KeyValue("adjust_threshold", options.adjust_threshold);
  writer.KeyValue("histogram_buckets", uint64_t{options.histogram_buckets});
  writer.KeyValue("min_unique_members", uint64_t{options.min_unique_members});
  writer.KeyValue("max_iterations", uint64_t{options.max_iterations});
  writer.KeyValue("visit_order",
                  std::string_view(VisitOrderName(options.visit_order)));
  writer.KeyValue("num_threads", uint64_t{options.num_threads});
  writer.KeyValue("rng_seed", uint64_t{options.rng_seed});
  writer.KeyValue("verbose", options.verbose);
  writer.KeyValue("checkpoint_dir", std::string_view(options.checkpoint_dir));
  writer.KeyValue("checkpoint_every", uint64_t{options.checkpoint_every});
  writer.KeyValue("resume", options.resume);
  writer.Key("pst");
  writer.BeginObject();
  writer.KeyValue("max_depth", uint64_t{options.pst.max_depth});
  writer.KeyValue("significance_threshold",
                  uint64_t{options.pst.significance_threshold});
  writer.KeyValue("max_memory_bytes", uint64_t{options.pst.max_memory_bytes});
  writer.KeyValue(
      "prune_strategy",
      std::string_view(PruneStrategyName(options.pst.prune_strategy)));
  writer.KeyValue("smoothing_p_min", options.pst.smoothing_p_min);
  writer.EndObject();
  writer.EndObject();
}

void WriteIterationStats(JsonWriter& writer, const IterationStats& stats) {
  writer.BeginObject();
  writer.KeyValue("iteration", uint64_t{stats.iteration});
  writer.KeyValue("new_clusters", uint64_t{stats.new_clusters});
  writer.KeyValue("consolidated", uint64_t{stats.consolidated});
  writer.KeyValue("clusters_after", uint64_t{stats.clusters_after});
  writer.KeyValue("unclustered", uint64_t{stats.unclustered});
  writer.KeyValue("log_threshold", stats.log_threshold);
  writer.KeyValue("seconds", stats.seconds);
  writer.KeyValue("refrozen_clusters", uint64_t{stats.refrozen_clusters});
  writer.KeyValue("scan_seconds", stats.scan_seconds);
  writer.KeyValue("pst_nodes_total", uint64_t{stats.pst_nodes_total});
  writer.KeyValue("pst_pruned_total", uint64_t{stats.pst_pruned_total});
  writer.KeyValue("seed_seconds", stats.seed_seconds);
  writer.KeyValue("join_seconds", stats.join_seconds);
  writer.KeyValue("consolidate_seconds", stats.consolidate_seconds);
  writer.KeyValue("prefilter_skip_ratio", stats.prefilter_skip_ratio);
  writer.KeyValue("prefilter_dp_early_exits",
                  uint64_t{stats.prefilter_dp_early_exits});
  writer.KeyValue("prefilter_l15_pruned",
                  uint64_t{stats.prefilter_l15_pruned});
  writer.KeyValue("prefilter_checkpoints",
                  uint64_t{stats.prefilter_checkpoints});
  writer.EndObject();
}

void WritePhasePerf(JsonWriter& writer, const PhasePerf& phase) {
  writer.BeginObject();
  writer.KeyValue("phase", std::string_view(phase.phase));
  for (const auto& [name, value] : phase.counters) {
    writer.KeyValue(name, uint64_t{value});
  }
  writer.KeyValue("utime_seconds", phase.utime_seconds);
  writer.KeyValue("stime_seconds", phase.stime_seconds);
  writer.KeyValue("major_faults", uint64_t{phase.major_faults});
  writer.KeyValue("maxrss_kb", uint64_t{phase.maxrss_kb});
  writer.EndObject();
}

/// Run-wide aggregates of the per-iteration phase records: counter totals
/// keyed by event name (insertion order = event order), rusage totals, and
/// the RSS high-water mark.
struct PerfSummary {
  std::vector<std::pair<std::string, uint64_t>> counter_totals;
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
  uint64_t major_faults = 0;
  uint64_t maxrss_kb = 0;
};

PerfSummary SummarizePerf(const RunReport& report) {
  PerfSummary sum;
  for (const IterationStats& stats : report.iterations) {
    for (const PhasePerf& phase : stats.phase_perf) {
      sum.utime_seconds += phase.utime_seconds;
      sum.stime_seconds += phase.stime_seconds;
      sum.major_faults += phase.major_faults;
      sum.maxrss_kb = std::max(sum.maxrss_kb, phase.maxrss_kb);
      for (const auto& [name, value] : phase.counters) {
        auto it = std::find_if(
            sum.counter_totals.begin(), sum.counter_totals.end(),
            [&](const auto& row) { return row.first == name; });
        if (it == sum.counter_totals.end()) {
          sum.counter_totals.emplace_back(name, value);
        } else {
          it->second += value;
        }
      }
    }
  }
  return sum;
}

}  // namespace

void WriteMetricsSnapshotJson(JsonWriter& writer,
                              const MetricsSnapshot& snapshot) {
  writer.BeginObject();
  writer.Key("counters");
  writer.BeginObject();
  for (const auto& row : snapshot.counters) {
    writer.KeyValue(row.name, uint64_t{row.value});
  }
  writer.EndObject();
  writer.Key("gauges");
  writer.BeginObject();
  for (const auto& row : snapshot.gauges) {
    writer.KeyValue(row.name, row.value);
  }
  writer.EndObject();
  writer.Key("histograms");
  writer.BeginArray();
  for (const auto& row : snapshot.histograms) {
    writer.BeginObject();
    writer.KeyValue("name", std::string_view(row.name));
    writer.Key("bounds");
    writer.BeginArray();
    for (double b : row.bounds) writer.Double(b);
    writer.EndArray();
    writer.Key("counts");
    writer.BeginArray();
    for (uint64_t c : row.counts) writer.UInt(c);
    writer.EndArray();
    writer.KeyValue("total_count", uint64_t{row.total_count});
    writer.KeyValue("sum", row.sum);
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

void WriteRunReportJson(const RunReport& report, std::ostream& out) {
  JsonWriter writer(out);
  writer.BeginObject();
  writer.KeyValue("schema", std::string_view("cluseq.run_report.v1"));

  writer.Key("options");
  WriteOptions(writer, report.options);

  writer.Key("input");
  writer.BeginObject();
  writer.KeyValue("num_sequences", uint64_t{report.num_sequences});
  writer.KeyValue("alphabet_size", uint64_t{report.alphabet_size});
  if (!report.corpus_format.empty()) {
    writer.Key("corpus");
    writer.BeginObject();
    writer.KeyValue("format", std::string_view(report.corpus_format));
    writer.KeyValue("records", uint64_t{report.corpus_records});
    writer.KeyValue("bytes", uint64_t{report.corpus_bytes});
    writer.KeyValue("mmap", report.corpus_mmap);
    writer.EndObject();
  }
  writer.EndObject();

  writer.Key("summary");
  writer.BeginObject();
  writer.KeyValue("num_clusters", uint64_t{report.num_clusters});
  writer.KeyValue("num_unclustered", uint64_t{report.num_unclustered});
  writer.KeyValue("iterations", uint64_t{report.total_iterations});
  writer.KeyValue("final_log_threshold", report.final_log_threshold);
  writer.KeyValue("total_seconds", report.total_seconds);
  writer.KeyValue("effective_threads", uint64_t{report.effective_threads});
  writer.Key("prefilter");
  writer.BeginObject();
  writer.KeyValue("enabled", report.prefilter_enabled);
  writer.KeyValue("skip_ratio", report.prefilter_skip_ratio);
  writer.KeyValue("early_exits", uint64_t{report.prefilter_early_exits});
  writer.KeyValue("l15_ratio", report.prefilter_l15_ratio);
  writer.KeyValue("adaptive_checkpoints",
                  uint64_t{report.prefilter_checkpoints});
  writer.KeyValue("sig_tier", std::string_view(report.prefilter_sig_tier));
  writer.EndObject();
  writer.Key("checkpoint");
  writer.BeginObject();
  writer.KeyValue("enabled", report.checkpoint_enabled);
  writer.KeyValue("saves", uint64_t{report.checkpoint_saves});
  writer.KeyValue("last_iteration", uint64_t{report.checkpoint_last_iteration});
  writer.KeyValue("resumed", report.resumed_from_checkpoint);
  writer.KeyValue("interrupted", report.interrupted);
  writer.EndObject();
  {
    const PerfSummary perf = SummarizePerf(report);
    writer.Key("perf");
    writer.BeginObject();
    writer.KeyValue("available", report.perf_available);
    for (const auto& [name, value] : perf.counter_totals) {
      writer.KeyValue(name, uint64_t{value});
    }
    writer.KeyValue("utime_seconds", perf.utime_seconds);
    writer.KeyValue("stime_seconds", perf.stime_seconds);
    writer.KeyValue("major_faults", uint64_t{perf.major_faults});
    writer.KeyValue("maxrss_kb", uint64_t{perf.maxrss_kb});
    writer.EndObject();
  }
  writer.EndObject();

  writer.Key("iterations");
  writer.BeginArray();
  for (size_t i = 0; i < report.iterations.size(); ++i) {
    writer.BeginObject();
    writer.Key("stats");
    WriteIterationStats(writer, report.iterations[i]);
    if (!report.iterations[i].phase_perf.empty()) {
      writer.Key("perf");
      writer.BeginArray();
      for (const PhasePerf& phase : report.iterations[i].phase_perf) {
        WritePhasePerf(writer, phase);
      }
      writer.EndArray();
    }
    if (i < report.iteration_metrics.size()) {
      writer.Key("metrics");
      WriteMetricsSnapshotJson(writer, report.iteration_metrics[i]);
    }
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("baseline_metrics");
  WriteMetricsSnapshotJson(writer, report.baseline_metrics);
  writer.Key("final_metrics");
  WriteMetricsSnapshotJson(writer, report.final_metrics);

  if (report.has_eval) {
    writer.Key("eval");
    writer.BeginObject();
    writer.KeyValue("correct_fraction", report.eval_correct_fraction);
    writer.KeyValue("macro_f1", report.eval_macro_f1);
    writer.KeyValue("purity", report.eval_purity);
    writer.KeyValue("nmi", report.eval_nmi);
    writer.KeyValue("found_clusters", uint64_t{report.eval_found_clusters});
    writer.KeyValue("unassigned", uint64_t{report.eval_unassigned});
    writer.EndObject();
  }

  writer.EndObject();
}

Status WriteRunReportJsonFile(const RunReport& report,
                              const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WriteRunReportJson(report, out);
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace cluseq
