// Scoped phase tracing with Chrome/Perfetto trace_event output.
//
// CLUSEQ_TRACE_SPAN("cluseq.scan") opens a span that lasts until the end of
// the enclosing scope; when the global recorder is enabled, the span's
// begin time and duration are recorded on the calling thread and can be
// serialized as Chrome trace_event JSON ("X" complete events — one event
// carries both the begin timestamp and the duration), which loads directly
// in chrome://tracing and ui.perfetto.dev. When tracing is disabled (the
// default) a span costs one relaxed atomic load.
//
// Span names must be string literals (or otherwise outlive the recorder):
// events store the pointer, not a copy, so recording stays allocation-free
// apart from buffer growth.
//
// Threading: events are appended to per-thread buffers guarded by
// per-buffer mutexes (uncontended in steady state — only the owning thread
// appends; the global collector locks each buffer briefly). Buffers of
// exited threads — e.g. ParallelFor workers, which are joined per call —
// are flushed into the recorder before the thread dies, so no events are
// lost.

#ifndef CLUSEQ_OBS_TRACE_H_
#define CLUSEQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace cluseq {
namespace obs {

/// One completed span: [ts_us, ts_us + dur_us) on thread `tid`, in
/// microseconds relative to the recorder's epoch.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
};

class TraceRecorder {
 public:
  struct ThreadBuffer;  // Implementation detail (public for the exit hook).

  static TraceRecorder& Get();

  /// Discards previously recorded events and starts recording.
  void Start();
  /// Stops recording; already-recorded events stay collectable.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Appends one completed span (no-op while disabled). Callers normally go
  /// through CLUSEQ_TRACE_SPAN instead.
  void Record(const char* name, double ts_us, double dur_us);

  /// Copy of every event recorded since Start(), in no particular order.
  std::vector<TraceEvent> Collect() const;

  /// Microseconds since the recorder epoch (the clock spans are stamped
  /// with).
  double NowMicros() const;

  /// Serializes all collected events as a Chrome trace_event JSON object:
  /// {"displayTimeUnit": "ms", "traceEvents": [{"ph": "X", ...}, ...]}.
  void WriteJson(std::ostream& out) const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  TraceRecorder();
  ThreadBuffer& BufferForThisThread();

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // Guards the buffer list and flushed events.
  std::vector<ThreadBuffer*> live_buffers_;
  std::vector<TraceEvent> flushed_;
  uint64_t generation_ = 0;  // Bumped by Start() to invalidate old buffers.
};

/// RAII span; see CLUSEQ_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), enabled_(TraceRecorder::Get().enabled()) {
    if (enabled_) start_us_ = TraceRecorder::Get().NowMicros();
  }
  ~TraceSpan() {
    if (enabled_) {
      TraceRecorder& recorder = TraceRecorder::Get();
      recorder.Record(name_, start_us_, recorder.NowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool enabled_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace cluseq

#define CLUSEQ_TRACE_CONCAT_INNER(a, b) a##b
#define CLUSEQ_TRACE_CONCAT(a, b) CLUSEQ_TRACE_CONCAT_INNER(a, b)

/// Opens a scoped trace span named `name` (a string literal).
#define CLUSEQ_TRACE_SPAN(name)                                        \
  ::cluseq::obs::TraceSpan CLUSEQ_TRACE_CONCAT(cluseq_trace_span_,     \
                                               __LINE__)(name)

#endif  // CLUSEQ_OBS_TRACE_H_
