// Scoped phase tracing with Chrome/Perfetto trace_event output.
//
// CLUSEQ_TRACE_SPAN("cluseq.scan") opens a span that lasts until the end of
// the enclosing scope; when the global recorder is enabled, the span's
// begin time and duration are recorded on the calling thread and can be
// serialized as Chrome trace_event JSON ("X" complete events — one event
// carries both the begin timestamp and the duration), which loads directly
// in chrome://tracing and ui.perfetto.dev. When tracing is disabled (the
// default) a span costs one relaxed atomic load.
//
// Recording is gated by a SamplingPolicy rather than all-or-nothing:
// `always` keeps every span, `prob:p,seed=n` keeps a seeded-deterministic
// fraction per thread, `every:n` keeps each thread's every-Nth span,
// `rate:r` caps spans per second per span name, and `never` is a hard off
// (equivalent to not starting). Sampling decisions only run once the
// single relaxed load says tracing is on, so the disabled hot path is
// untouched by the policy machinery.
//
// Span names must be string literals (or otherwise outlive the recorder):
// events store the pointer, not a copy, so recording stays allocation-free
// apart from buffer growth.
//
// Threading: events are appended to per-thread buffers guarded by
// per-buffer mutexes (uncontended in steady state — only the owning thread
// appends; the global collector locks each buffer briefly). Buffers of
// exited threads — e.g. ParallelFor workers, which are joined per call —
// are flushed into the recorder before the thread dies, so no events are
// lost. Per-thread sampling state (the seeded RNG, the every-Nth counter)
// lives in the same buffers and resets with them on Start(), so at a fixed
// thread count with a deterministic span schedule two runs keep an
// identical event set.

#ifndef CLUSEQ_OBS_TRACE_H_
#define CLUSEQ_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace cluseq {
namespace obs {

/// Which spans the recorder keeps while tracing is on. Parsed from the
/// CLI's --trace_sample flag; see Parse() for the accepted specs.
struct SamplingPolicy {
  enum class Mode : uint8_t {
    kAlways,         ///< Keep every span (the historical behavior).
    kNever,          ///< Keep none: the recorder stays gated off.
    kProbabilistic,  ///< Keep each span with probability p (seeded, per
                     ///< thread — deterministic across identical runs).
    kEveryNth,       ///< Keep each thread's spans 0, N, 2N, ... exactly.
    kRateLimited,    ///< Keep at most `max_per_sec` spans per second for
                     ///< each distinct span name (wall-clock windows).
  };

  Mode mode = Mode::kAlways;
  double probability = 1.0;  ///< kProbabilistic.
  uint64_t seed = 0;         ///< kProbabilistic.
  uint64_t every_nth = 1;    ///< kEveryNth.
  double max_per_sec = 0.0;  ///< kRateLimited.

  /// Accepted specs: "always", "never" (alias "off"), "prob:P" or
  /// "prob:P,seed=N" (0 <= P <= 1), "every:N" (N >= 1), "rate:R" (R > 0,
  /// spans/second per span name).
  static Status Parse(std::string_view spec, SamplingPolicy* out);
  std::string ToString() const;
};

/// One completed span: [ts_us, ts_us + dur_us) on thread `tid`, in
/// microseconds relative to the recorder's epoch.
struct TraceEvent {
  const char* name = nullptr;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
};

class TraceRecorder {
 public:
  struct ThreadBuffer;  // Implementation detail (public for the exit hook).

  static TraceRecorder& Get();

  /// Discards previously recorded events and starts recording under
  /// `policy`. A `never` policy leaves the recorder gated off (spans still
  /// cost one relaxed load) after discarding old events.
  void Start(const SamplingPolicy& policy);
  void Start() { Start(SamplingPolicy{}); }
  /// Stops recording; already-recorded events stay collectable.
  void Stop();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Policy-based keep/drop decision for one span on the calling thread.
  /// Only meaningful while enabled(); TraceSpan calls this after the
  /// enabled gate passes.
  bool Sample(const char* name);

  /// Appends one completed span (no-op while disabled). Callers normally go
  /// through CLUSEQ_TRACE_SPAN instead.
  void Record(const char* name, double ts_us, double dur_us);

  /// Copy of every event recorded since Start(), in no particular order —
  /// WriteJson() sorts by (ts_us, tid) before serializing.
  std::vector<TraceEvent> Collect() const;

  /// Microseconds since the recorder epoch (the clock spans are stamped
  /// with).
  double NowMicros() const;

  /// Serializes all collected events as a Chrome trace_event JSON object:
  /// {"displayTimeUnit": "ms", "traceEvents": [...]} — first one "M"
  /// thread_name metadata event per thread (named "t<N>"), then the "X"
  /// complete events sorted by (ts_us, tid), so Perfetto timelines are
  /// stable across runs and threads are labeled.
  void WriteJson(std::ostream& out) const;
  Status WriteJsonFile(const std::string& path) const;

 private:
  TraceRecorder();
  ThreadBuffer& BufferForThisThread();
  // Clears stale per-thread state (events + sampling counters) when the
  // buffer predates the current generation. Caller holds buffer.mu.
  void SyncBufferLocked(ThreadBuffer& buffer, uint64_t generation);

  std::atomic<bool> enabled_{false};
  std::chrono::steady_clock::time_point epoch_;

  mutable std::mutex mu_;  // Guards the buffer list, policy, rate state,
                           // and flushed events.
  SamplingPolicy policy_;
  std::vector<ThreadBuffer*> live_buffers_;
  std::vector<TraceEvent> flushed_;
  uint64_t generation_ = 0;  // Bumped by Start() to invalidate old buffers.
  // kRateLimited bookkeeping: span name -> (window start in whole seconds
  // since epoch, spans kept in that window).
  std::map<std::string, std::pair<int64_t, uint64_t>, std::less<>>
      rate_windows_;
};

/// RAII span; see CLUSEQ_TRACE_SPAN.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name), enabled_(TraceRecorder::Get().enabled()) {
    if (enabled_) {
      TraceRecorder& recorder = TraceRecorder::Get();
      enabled_ = recorder.Sample(name);
      if (enabled_) start_us_ = recorder.NowMicros();
    }
  }
  ~TraceSpan() {
    if (enabled_) {
      TraceRecorder& recorder = TraceRecorder::Get();
      recorder.Record(name_, start_us_, recorder.NowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  bool enabled_;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace cluseq

#define CLUSEQ_TRACE_CONCAT_INNER(a, b) a##b
#define CLUSEQ_TRACE_CONCAT(a, b) CLUSEQ_TRACE_CONCAT_INNER(a, b)

/// Opens a scoped trace span named `name` (a string literal).
#define CLUSEQ_TRACE_SPAN(name)                                        \
  ::cluseq::obs::TraceSpan CLUSEQ_TRACE_CONCAT(cluseq_trace_span_,     \
                                               __LINE__)(name)

#endif  // CLUSEQ_OBS_TRACE_H_
