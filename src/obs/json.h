// Minimal zero-dependency JSON writer and parser for the observability
// layer.
//
// Every machine-readable artifact this library emits — run reports
// (`--metrics_json`), Chrome trace files (`--trace_json`), and the bench
// harnesses' BENCH_*.json — goes through the one JsonWriter here, so key
// styles and number formatting cannot drift between emitters. The parser is
// the validating counterpart: tests parse what the writer emitted, and
// tools can load a run report back without an external JSON dependency.
//
// Scope is deliberately small: UTF-8 pass-through (no \uXXXX decoding
// beyond the escapes the writer itself produces), doubles printed with
// enough digits to round-trip, and non-finite doubles mapped to null
// (JSON has no NaN/Infinity and strict parsers reject them).

#ifndef CLUSEQ_OBS_JSON_H_
#define CLUSEQ_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace cluseq {
namespace obs {

/// Streaming JSON emitter with automatic commas and two-space indentation.
/// Usage is push-down: Begin/End calls must nest correctly and every object
/// member must be introduced with Key(). Misuse trips a fatal check rather
/// than emitting invalid JSON.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  /// Introduces the next member of the enclosing object.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void UInt(uint64_t value);
  /// Printed with %.17g (round-trips a double); non-finite values emit
  /// null, since JSON has no representation for them.
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Convenience: Key + value in one call.
  void KeyValue(std::string_view key, std::string_view value) {
    Key(key);
    String(value);
  }
  void KeyValue(std::string_view key, uint64_t value) {
    Key(key);
    UInt(value);
  }
  void KeyValue(std::string_view key, int64_t value) {
    Key(key);
    Int(value);
  }
  void KeyValue(std::string_view key, double value) {
    Key(key);
    Double(value);
  }
  void KeyValue(std::string_view key, bool value) {
    Key(key);
    Bool(value);
  }

  /// True once the single top-level value is complete.
  bool done() const { return done_; }

 private:
  enum class Frame : uint8_t { kObject, kArray };

  void BeforeValue();
  void Indent();
  void WriteEscaped(std::string_view s);

  std::ostream& out_;
  std::vector<Frame> stack_;
  std::vector<bool> has_items_;
  bool key_pending_ = false;
  bool done_ = false;
};

/// Parsed JSON value (tree form). Object member order is preserved.
struct JsonValue {
  enum class Type : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Type type = Type::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string string_value;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::kNull; }
  bool is_object() const { return type == Type::kObject; }
  bool is_array() const { return type == Type::kArray; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }

  /// First member with the given key, or nullptr (objects only).
  const JsonValue* Find(std::string_view key) const;
};

/// Strict recursive-descent parse of one complete JSON document (trailing
/// whitespace allowed, trailing garbage is an error). Depth is bounded to
/// keep hostile inputs from overflowing the stack.
Status ParseJson(std::string_view text, JsonValue* out);

/// Reads and parses a JSON file (convenience for tests and tools).
Status ParseJsonFile(const std::string& path, JsonValue* out);

}  // namespace obs
}  // namespace cluseq

#endif  // CLUSEQ_OBS_JSON_H_
