// Hardware performance counters and per-phase resource accounting.
//
// PerfCounterSet wraps perf_event_open(2): one event group (a leader plus
// siblings) read atomically with a single read(2), so cycles, instructions
// and cache/branch misses are mutually consistent — no skew between the
// counters of one sample. The default set covers PERF_COUNT_HW_CPU_CYCLES,
// INSTRUCTIONS, CACHE_REFERENCES, CACHE_MISSES and BRANCH_MISSES; siblings
// that the kernel rejects (common for cache/branch events on older PMUs)
// are dropped individually, and a rejected *leader* makes the whole set
// unavailable. Unavailability is a supported state, not an error:
// containers routinely deny the syscall (perf_event_paranoid >= 2 without
// CAP_PERFMON) and VMs often expose no PMU at all. In that state every
// operation is a cheap no-op, the `perf.available` gauge reads 0, exactly
// one warning is logged, and no `perf.*` counter keys are ever registered —
// consumers see the keys' absence, never zeros masquerading as
// measurements.
//
// Counters are opened for the calling thread (perf "inherit" cannot be
// combined with grouped reads), so deltas cover the orchestrating thread
// only. That thread participates in every ParallelFor, which makes the
// numbers representative of per-phase behavior; time_enabled/time_running
// are tracked so multiplexed readings are scaled (§ PERF_FORMAT_TOTAL_TIME_*).
//
// PerfScope / PhasePerfCollector layer per-phase accounting on top: a scope
// snapshots the process-wide counter set plus getrusage(RUSAGE_SELF) on
// entry, and on exit records the deltas (a) into the collector (landing in
// IterationStats and the run report) and (b) into the metrics registry as
// `perf.<phase>.<counter>` counters and `rusage.*` gauges. getrusage is
// always available, so utime/stime/major-fault deltas and the RSS
// high-water mark survive even when perf does not.

#ifndef CLUSEQ_OBS_PERF_COUNTERS_H_
#define CLUSEQ_OBS_PERF_COUNTERS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace cluseq {
namespace obs {

/// Upper bound on events per group (the default set uses 5).
inline constexpr size_t kMaxPerfEvents = 8;

/// One perf event to open: `type`/`config` as perf_event_attr fields
/// (PERF_TYPE_* / PERF_COUNT_*), `name` the key the value is reported
/// under. Must be a string literal (stored by pointer).
struct PerfEventSpec {
  uint32_t type = 0;
  uint64_t config = 0;
  const char* name = nullptr;
};

/// The default hardware set: cycles (leader), instructions, cache
/// references, cache misses, branch misses. Empty on non-Linux builds.
std::span<const PerfEventSpec> DefaultPerfEvents();

/// One atomic sample of a group: raw (unscaled) values in spec order plus
/// the enabled/running times needed to correct for multiplexing.
struct PerfReading {
  size_t num = 0;
  std::array<uint64_t, kMaxPerfEvents> raw{};
  uint64_t time_enabled_ns = 0;
  uint64_t time_running_ns = 0;
};

class PerfCounterSet {
 public:
  /// Opens the default hardware events for the calling thread.
  PerfCounterSet();
  /// Opens a custom group (events[0] is the leader). Used by tests to
  /// exercise the live path with software events on PMU-less machines.
  explicit PerfCounterSet(std::span<const PerfEventSpec> events);

  /// Forced-unavailable instance: tests of the degraded path.
  struct UnavailableTag {};
  explicit PerfCounterSet(UnavailableTag) {}

  ~PerfCounterSet();

  PerfCounterSet(const PerfCounterSet&) = delete;
  PerfCounterSet& operator=(const PerfCounterSet&) = delete;

  /// False when the leader could not be opened (denied syscall, no PMU,
  /// non-Linux). Read() then always fails and no keys are ever emitted.
  bool available() const { return num_events_ > 0; }

  /// Events that actually opened (rejected siblings are dropped).
  size_t num_events() const { return num_events_; }
  const char* event_name(size_t i) const { return names_[i]; }

  /// One read(2) of the whole group. Returns false when unavailable or the
  /// kernel returned a short/odd record.
  bool Read(PerfReading* out) const;

  /// end - begin per event, scaled by the group's enabled/running time
  /// ratio over the window (identity when the group was never multiplexed).
  static void Delta(const PerfReading& begin, const PerfReading& end,
                    std::array<uint64_t, kMaxPerfEvents>* out);

  /// Lazily-opened process-wide default set. The first call sets the
  /// `perf.available` gauge and, when unavailable, logs one warning.
  static PerfCounterSet& Process();

 private:
  void Open(std::span<const PerfEventSpec> events);

  size_t num_events_ = 0;
  std::array<int, kMaxPerfEvents> fds_{};  // fds_[0] is the group leader.
  std::array<const char*, kMaxPerfEvents> names_{};
};

/// Per-phase resource deltas: perf counters when available, getrusage
/// always. `counters` pairs event name -> multiplex-scaled delta, in the
/// order of the set that produced them; empty when perf is unavailable.
struct PhasePerf {
  std::string phase;
  std::vector<std::pair<std::string, uint64_t>> counters;
  double utime_seconds = 0.0;
  double stime_seconds = 0.0;
  uint64_t major_faults = 0;  ///< Delta over the phase.
  uint64_t maxrss_kb = 0;     ///< Process high-water mark at phase end.
};

class PhasePerfCollector;

/// RAII sampler: snapshots counters + rusage at construction, records the
/// deltas at destruction — into `collector` when given, and always into the
/// metrics registry (`perf.<phase>.<counter>` counters, `rusage.*` gauges).
/// Callers normally go through PhasePerfCollector::Sample or
/// CLUSEQ_PERF_SCOPE; `phase` must be a string literal.
class PerfScope {
 public:
  explicit PerfScope(const char* phase,
                     PhasePerfCollector* collector = nullptr,
                     const PerfCounterSet* set = nullptr);
  ~PerfScope();

  PerfScope(const PerfScope&) = delete;
  PerfScope& operator=(const PerfScope&) = delete;

 private:
  const char* phase_;
  PhasePerfCollector* collector_;
  const PerfCounterSet* set_;
  PerfReading begin_;
  bool perf_ok_ = false;
  double begin_utime_ = 0.0;
  double begin_stime_ = 0.0;
  uint64_t begin_major_faults_ = 0;
};

/// Accumulates the PhasePerf records of the scopes sampled through it (one
/// per scope, in destruction order). Single-threaded by design: phases are
/// sampled by the orchestrating thread only.
class PhasePerfCollector {
 public:
  /// Samples with the process-wide default counter set.
  PhasePerfCollector() = default;
  /// Samples with an injected set (tests: software events / forced
  /// unavailable). `set` must outlive the collector.
  explicit PhasePerfCollector(const PerfCounterSet* set) : set_(set) {}

  PerfScope Sample(const char* phase) {
    return PerfScope(phase, this, set_);
  }

  void Append(PhasePerf phase) { phases_.push_back(std::move(phase)); }

  /// Moves out everything recorded so far and clears the collector.
  std::vector<PhasePerf> TakePhases() {
    std::vector<PhasePerf> out = std::move(phases_);
    phases_.clear();
    return out;
  }

 private:
  const PerfCounterSet* set_ = nullptr;  // null = PerfCounterSet::Process().
  std::vector<PhasePerf> phases_;
};

}  // namespace obs
}  // namespace cluseq

#define CLUSEQ_PERF_CONCAT_INNER(a, b) a##b
#define CLUSEQ_PERF_CONCAT(a, b) CLUSEQ_PERF_CONCAT_INNER(a, b)

/// Opens a scoped perf sample named `name` (a string literal): counter and
/// rusage deltas land in the metrics registry when the scope closes.
#define CLUSEQ_PERF_SCOPE(name)                                       \
  ::cluseq::obs::PerfScope CLUSEQ_PERF_CONCAT(cluseq_perf_scope_,     \
                                              __LINE__)(name)

#endif  // CLUSEQ_OBS_PERF_COUNTERS_H_
