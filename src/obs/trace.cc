#include "obs/trace.h"

#include <fstream>
#include <functional>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace cluseq {
namespace obs {

// Events land in a per-thread buffer so recording never contends on a
// global lock. Each buffer carries the generation it was filled under;
// Start() bumps the generation, which lazily discards stale events the
// next time their owning thread records (or when Collect() walks the
// buffer list).
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t generation = 0;
  uint32_t tid = 0;
};

namespace {

// Flushes the thread's buffer into the recorder when the thread exits, so
// short-lived workers (ParallelFor joins its threads per call) do not lose
// events. The recorder outlives every thread (leaked singleton).
struct ThreadBufferHandle {
  TraceRecorder::ThreadBuffer* buffer = nullptr;
  std::function<void(TraceRecorder::ThreadBuffer*)> on_exit;
  ~ThreadBufferHandle() {
    if (buffer && on_exit) on_exit(buffer);
  }
};

}  // namespace

TraceRecorder& TraceRecorder::Get() {
  // Leaked on purpose: thread-exit hooks may run arbitrarily late.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::BufferForThisThread() {
  thread_local ThreadBufferHandle handle;
  if (handle.buffer == nullptr) {
    auto* buffer = new ThreadBuffer();
    buffer->tid = ThreadIndex();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffer->generation = generation_;
      live_buffers_.push_back(buffer);
    }
    handle.buffer = buffer;
    handle.on_exit = [this](ThreadBuffer* b) {
      std::lock_guard<std::mutex> lock(mu_);
      {
        std::lock_guard<std::mutex> buffer_lock(b->mu);
        if (b->generation == generation_) {
          flushed_.insert(flushed_.end(), b->events.begin(), b->events.end());
        }
      }
      std::erase(live_buffers_, b);
      delete b;
    };
  }
  return *handle.buffer;
}

void TraceRecorder::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  flushed_.clear();
  // Live buffers are invalidated lazily: their generation no longer
  // matches, so Record() clears them on next use and Collect() skips them.
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::Record(const char* name, double ts_us, double dur_us) {
  if (!enabled()) return;
  ThreadBuffer& buffer = BufferForThisThread();
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = generation_;
  }
  std::lock_guard<std::mutex> lock(buffer.mu);
  if (buffer.generation != generation) {
    buffer.events.clear();
    buffer.generation = generation;
  }
  buffer.events.push_back(TraceEvent{name, ts_us, dur_us, buffer.tid});
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events = flushed_;
  for (ThreadBuffer* buffer : live_buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->generation == generation_) {
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  return events;
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  const std::vector<TraceEvent> events = Collect();
  JsonWriter writer(out);
  writer.BeginObject();
  writer.KeyValue("displayTimeUnit", std::string_view("ms"));
  writer.Key("traceEvents");
  writer.BeginArray();
  for (const TraceEvent& event : events) {
    writer.BeginObject();
    writer.KeyValue("name", std::string_view(event.name));
    writer.KeyValue("cat", std::string_view("cluseq"));
    writer.KeyValue("ph", std::string_view("X"));
    writer.KeyValue("ts", event.ts_us);
    writer.KeyValue("dur", event.dur_us);
    writer.KeyValue("pid", uint64_t{1});
    writer.KeyValue("tid", uint64_t{event.tid});
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

Status TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WriteJson(out);
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace cluseq
