#include "obs/trace.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <sstream>
#include <tuple>

#include "obs/json.h"
#include "obs/metrics.h"
#include "util/string_util.h"

namespace cluseq {
namespace obs {

// Events land in a per-thread buffer so recording never contends on a
// global lock. Each buffer carries the generation it was filled under;
// Start() bumps the generation, which lazily discards stale events (and
// resets the per-thread sampling state) the next time their owning thread
// samples or records.
struct TraceRecorder::ThreadBuffer {
  std::mutex mu;
  std::vector<TraceEvent> events;
  uint64_t generation = 0;
  uint32_t tid = 0;
  // Sampling state, reset whenever the generation changes.
  uint64_t spans_seen = 0;   // kEveryNth position counter.
  uint64_t rng_state = 0;    // kProbabilistic splitmix64 state.
  bool rng_seeded = false;
};

namespace {

// Flushes the thread's buffer into the recorder when the thread exits, so
// short-lived workers (ParallelFor joins its threads per call) do not lose
// events. The recorder outlives every thread (leaked singleton).
struct ThreadBufferHandle {
  TraceRecorder::ThreadBuffer* buffer = nullptr;
  std::function<void(TraceRecorder::ThreadBuffer*)> on_exit;
  ~ThreadBufferHandle() {
    if (buffer && on_exit) on_exit(buffer);
  }
};

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Seeds a thread's sampling RNG from (policy seed, thread index): the
// stream each thread draws is a pure function of the two, which is what
// makes `prob:p,seed=n` reproducible at a fixed thread count.
uint64_t SeedForThread(uint64_t seed, uint32_t tid) {
  uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL * (uint64_t{tid} + 1));
  SplitMix64(&state);  // One warmup round decorrelates small seeds.
  return state;
}

bool ParseFullDouble(std::string_view text, double* out) {
  const std::string buffer(text);
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (end != buffer.c_str() + buffer.size() || buffer.empty()) return false;
  if (!std::isfinite(value)) return false;
  *out = value;
  return true;
}

bool ParseFullUint(std::string_view text, uint64_t* out) {
  const std::string buffer(text);
  char* end = nullptr;
  const unsigned long long value = std::strtoull(buffer.c_str(), &end, 10);
  if (end != buffer.c_str() + buffer.size() || buffer.empty()) return false;
  *out = value;
  return true;
}

}  // namespace

Status SamplingPolicy::Parse(std::string_view spec, SamplingPolicy* out) {
  SamplingPolicy policy;
  if (spec == "always") {
    policy.mode = Mode::kAlways;
  } else if (spec == "never" || spec == "off") {
    policy.mode = Mode::kNever;
  } else if (spec.starts_with("prob:")) {
    policy.mode = Mode::kProbabilistic;
    std::string_view rest = spec.substr(5);
    std::string_view prob = rest;
    const size_t comma = rest.find(',');
    if (comma != std::string_view::npos) {
      prob = rest.substr(0, comma);
      std::string_view seed = rest.substr(comma + 1);
      if (!seed.starts_with("seed=") ||
          !ParseFullUint(seed.substr(5), &policy.seed)) {
        return Status::InvalidArgument(
            "trace_sample: expected prob:P,seed=N, got '" +
            std::string(spec) + "'");
      }
    }
    if (!ParseFullDouble(prob, &policy.probability) ||
        policy.probability < 0.0 || policy.probability > 1.0) {
      return Status::InvalidArgument(
          "trace_sample: probability must be in [0, 1], got '" +
          std::string(spec) + "'");
    }
  } else if (spec.starts_with("every:")) {
    policy.mode = Mode::kEveryNth;
    if (!ParseFullUint(spec.substr(6), &policy.every_nth) ||
        policy.every_nth == 0) {
      return Status::InvalidArgument(
          "trace_sample: every:N needs N >= 1, got '" + std::string(spec) +
          "'");
    }
  } else if (spec.starts_with("rate:")) {
    policy.mode = Mode::kRateLimited;
    if (!ParseFullDouble(spec.substr(5), &policy.max_per_sec) ||
        policy.max_per_sec <= 0.0) {
      return Status::InvalidArgument(
          "trace_sample: rate:R needs R > 0, got '" + std::string(spec) +
          "'");
    }
  } else {
    return Status::InvalidArgument(
        "trace_sample: unknown policy '" + std::string(spec) +
        "' (use always, never, prob:P[,seed=N], every:N, rate:R)");
  }
  *out = policy;
  return Status::OK();
}

std::string SamplingPolicy::ToString() const {
  switch (mode) {
    case Mode::kAlways:
      return "always";
    case Mode::kNever:
      return "never";
    case Mode::kProbabilistic:
      return StringPrintf("prob:%g,seed=%llu", probability,
                          static_cast<unsigned long long>(seed));
    case Mode::kEveryNth:
      return StringPrintf("every:%llu",
                          static_cast<unsigned long long>(every_nth));
    case Mode::kRateLimited:
      return StringPrintf("rate:%g", max_per_sec);
  }
  return "unknown";
}

TraceRecorder& TraceRecorder::Get() {
  // Leaked on purpose: thread-exit hooks may run arbitrarily late.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

double TraceRecorder::NowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

TraceRecorder::ThreadBuffer& TraceRecorder::BufferForThisThread() {
  thread_local ThreadBufferHandle handle;
  if (handle.buffer == nullptr) {
    auto* buffer = new ThreadBuffer();
    buffer->tid = ThreadIndex();
    {
      std::lock_guard<std::mutex> lock(mu_);
      buffer->generation = generation_;
      live_buffers_.push_back(buffer);
    }
    handle.buffer = buffer;
    handle.on_exit = [this](ThreadBuffer* b) {
      std::lock_guard<std::mutex> lock(mu_);
      {
        std::lock_guard<std::mutex> buffer_lock(b->mu);
        if (b->generation == generation_) {
          flushed_.insert(flushed_.end(), b->events.begin(), b->events.end());
        }
      }
      std::erase(live_buffers_, b);
      delete b;
    };
  }
  return *handle.buffer;
}

void TraceRecorder::SyncBufferLocked(ThreadBuffer& buffer,
                                     uint64_t generation) {
  if (buffer.generation == generation) return;
  buffer.events.clear();
  buffer.generation = generation;
  buffer.spans_seen = 0;
  buffer.rng_seeded = false;
}

void TraceRecorder::Start(const SamplingPolicy& policy) {
  std::lock_guard<std::mutex> lock(mu_);
  ++generation_;
  flushed_.clear();
  rate_windows_.clear();
  policy_ = policy;
  // Live buffers are invalidated lazily: their generation no longer
  // matches, so Sample()/Record() reset them on next use and Collect()
  // skips them. A `never` policy keeps the gate closed: spans stay at the
  // one-relaxed-load cost and nothing records.
  enabled_.store(policy.mode != SamplingPolicy::Mode::kNever,
                 std::memory_order_relaxed);
}

void TraceRecorder::Stop() {
  enabled_.store(false, std::memory_order_relaxed);
}

bool TraceRecorder::Sample(const char* name) {
  SamplingPolicy policy;
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    policy = policy_;
    generation = generation_;
  }
  switch (policy.mode) {
    case SamplingPolicy::Mode::kAlways:
      return true;
    case SamplingPolicy::Mode::kNever:
      return false;  // Unreachable in practice: Start(never) keeps the
                     // enabled gate closed.
    case SamplingPolicy::Mode::kProbabilistic: {
      ThreadBuffer& buffer = BufferForThisThread();
      std::lock_guard<std::mutex> lock(buffer.mu);
      SyncBufferLocked(buffer, generation);
      if (!buffer.rng_seeded) {
        buffer.rng_state = SeedForThread(policy.seed, buffer.tid);
        buffer.rng_seeded = true;
      }
      // 53 uniform bits -> [0, 1); strictly-less keeps p=0 at "none" and
      // p=1 at "all".
      const double draw = static_cast<double>(
                              SplitMix64(&buffer.rng_state) >> 11) *
                          0x1.0p-53;
      return draw < policy.probability;
    }
    case SamplingPolicy::Mode::kEveryNth: {
      ThreadBuffer& buffer = BufferForThisThread();
      std::lock_guard<std::mutex> lock(buffer.mu);
      SyncBufferLocked(buffer, generation);
      const bool keep = buffer.spans_seen % policy.every_nth == 0;
      ++buffer.spans_seen;
      return keep;
    }
    case SamplingPolicy::Mode::kRateLimited: {
      const auto second =
          static_cast<int64_t>(NowMicros() / 1e6);
      std::lock_guard<std::mutex> lock(mu_);
      if (generation != generation_) return false;  // Raced a Start().
      auto it = rate_windows_.find(name);
      if (it == rate_windows_.end()) {
        it = rate_windows_.emplace(std::string(name),
                                   std::make_pair(second, uint64_t{0}))
                 .first;
      }
      if (it->second.first != second) {
        it->second.first = second;
        it->second.second = 0;
      }
      if (static_cast<double>(it->second.second) >= policy.max_per_sec) {
        return false;
      }
      ++it->second.second;
      return true;
    }
  }
  return true;
}

void TraceRecorder::Record(const char* name, double ts_us, double dur_us) {
  if (!enabled()) return;
  ThreadBuffer& buffer = BufferForThisThread();
  uint64_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = generation_;
  }
  std::lock_guard<std::mutex> lock(buffer.mu);
  SyncBufferLocked(buffer, generation);
  buffer.events.push_back(TraceEvent{name, ts_us, dur_us, buffer.tid});
}

std::vector<TraceEvent> TraceRecorder::Collect() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceEvent> events = flushed_;
  for (ThreadBuffer* buffer : live_buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    if (buffer->generation == generation_) {
      events.insert(events.end(), buffer->events.begin(),
                    buffer->events.end());
    }
  }
  return events;
}

void TraceRecorder::WriteJson(std::ostream& out) const {
  std::vector<TraceEvent> events = Collect();
  // Deterministic serialization order: collection order depends on which
  // buffer a thread landed in, sorting by (ts_us, tid) does not.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return std::tie(a.ts_us, a.tid) <
                            std::tie(b.ts_us, b.tid);
                   });
  std::vector<uint32_t> tids;
  for (const TraceEvent& event : events) tids.push_back(event.tid);
  std::sort(tids.begin(), tids.end());
  tids.erase(std::unique(tids.begin(), tids.end()), tids.end());

  JsonWriter writer(out);
  writer.BeginObject();
  writer.KeyValue("displayTimeUnit", std::string_view("ms"));
  writer.Key("traceEvents");
  writer.BeginArray();
  // Chrome trace "M" metadata names each thread track ("t<N>", our stable
  // ThreadIndex numbering) so Perfetto shows labeled rows instead of bare
  // tids.
  for (uint32_t tid : tids) {
    writer.BeginObject();
    writer.KeyValue("name", std::string_view("thread_name"));
    writer.KeyValue("ph", std::string_view("M"));
    writer.KeyValue("pid", uint64_t{1});
    writer.KeyValue("tid", uint64_t{tid});
    writer.Key("args");
    writer.BeginObject();
    writer.KeyValue("name", "t" + std::to_string(tid));
    writer.EndObject();
    writer.EndObject();
  }
  for (const TraceEvent& event : events) {
    writer.BeginObject();
    writer.KeyValue("name", std::string_view(event.name));
    writer.KeyValue("cat", std::string_view("cluseq"));
    writer.KeyValue("ph", std::string_view("X"));
    writer.KeyValue("ts", event.ts_us);
    writer.KeyValue("dur", event.dur_us);
    writer.KeyValue("pid", uint64_t{1});
    writer.KeyValue("tid", uint64_t{event.tid});
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
}

Status TraceRecorder::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  WriteJson(out);
  out.flush();
  if (!out) return Status::IOError("failed writing " + path);
  return Status::OK();
}

}  // namespace obs
}  // namespace cluseq
