// Process-wide runtime metrics registry: counters, gauges, and fixed-bucket
// histograms, cheap enough for the scoring hot paths.
//
// Design (DESIGN.md §10):
//
//   * Instruments are owned by a global registry and looked up by name
//     (dotted-path convention, e.g. "frozen_bank.scan_symbols"). Lookup
//     takes a mutex, so call sites cache the reference in a function-local
//     static — after the first call the hot path never touches the
//     registry:
//
//       static obs::Counter& symbols =
//           obs::MetricsRegistry::Get().GetCounter("frozen_bank.scan_symbols");
//       symbols.Add(len * k);
//
//   * Counters and histograms are sharded: each instrument keeps a small
//     array of cache-line-padded atomic cells, and a thread always writes
//     the cell picked by its (stable, sequentially assigned) thread index.
//     An increment is exactly one relaxed fetch_add with no cross-thread
//     cache-line ping-pong at realistic thread counts; Snapshot() sums the
//     shards. Values are monotone — there is no "read-modify across shards"
//     operation to race with.
//
//   * Snapshot() deep-copies every instrument's current value into plain
//     structs, so a snapshot is immutable and isolated: instruments may keep
//     counting while a snapshot is serialized or compared (snapshots taken
//     per CLUSEQ iteration feed the RunReport).
//
//   * SetMetricsEnabled(false) turns every instrument into a single relaxed
//     load + branch. The micro benches use it to measure the
//     instrumentation overhead against "compiled in but unused".
//
// All counters are cumulative for the process lifetime. Consumers that want
// per-run or per-iteration numbers difference two snapshots (see
// MetricsSnapshot::CounterValue and core/cluseq.cc).

#ifndef CLUSEQ_OBS_METRICS_H_
#define CLUSEQ_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace cluseq {
namespace obs {

/// Globally enables/disables all instrument writes (reads still work).
/// Enabled by default; intended for overhead measurement and tests.
void SetMetricsEnabled(bool enabled);
bool MetricsEnabled();

/// Stable, small, sequentially-assigned index of the calling thread
/// (first caller gets 0). Shared by the metric shards and the trace
/// recorder's thread ids.
uint32_t ThreadIndex();

namespace internal_metrics {
inline constexpr size_t kShards = 16;  // Power of two; see ShardIndex().
inline size_t ShardIndex() { return ThreadIndex() & (kShards - 1); }
struct alignas(64) ShardCell {
  std::atomic<uint64_t> value{0};
};
}  // namespace internal_metrics

/// Monotone event counter.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void Add(uint64_t n) {
    if (!MetricsEnabled()) return;
    shards_[internal_metrics::ShardIndex()].value.fetch_add(
        n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Sum over all shards (concurrent increments may or may not be seen).
  uint64_t Value() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  void ResetForTest() {
    for (auto& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

  std::string name_;
  std::array<internal_metrics::ShardCell, internal_metrics::kShards> shards_;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(double v) {
    if (!MetricsEnabled()) return;
    value_.store(v, std::memory_order_relaxed);
  }
  double Value() const { return value_.load(std::memory_order_relaxed); }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  void ResetForTest() { value_.store(0.0, std::memory_order_relaxed); }

  std::string name_;
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: bucket i counts observations v <= bounds[i]
/// (bounds strictly increasing); one implicit overflow bucket catches the
/// rest. Observation sums are kept per shard so mean latency is available
/// without a separate gauge.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bounds);

  void Observe(double v);

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Aggregated per-bucket counts (size bounds().size() + 1).
  std::vector<uint64_t> BucketCounts() const;
  uint64_t TotalCount() const;
  double Sum() const;

 private:
  friend class MetricsRegistry;
  void ResetForTest();

  struct alignas(64) Shard {
    // One cell per bucket plus the running sum; sized at construction.
    std::unique_ptr<std::atomic<uint64_t>[]> counts;
    std::atomic<double> sum{0.0};
  };

  std::string name_;
  std::vector<double> bounds_;
  std::array<Shard, internal_metrics::kShards> shards_;
};

/// Immutable copy of every registered instrument's value at one moment.
struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<double> bounds;
    std::vector<uint64_t> counts;  ///< bounds.size() + 1 (overflow last).
    uint64_t total_count = 0;
    double sum = 0.0;
  };

  std::vector<CounterRow> counters;      // Sorted by name.
  std::vector<GaugeRow> gauges;          // Sorted by name.
  std::vector<HistogramRow> histograms;  // Sorted by name.

  /// Value of the named counter, or 0 when absent (absent == never
  /// registered == never incremented, so 0 is exact, not a guess).
  uint64_t CounterValue(std::string_view name) const;
  /// Value of the named gauge, or fallback when absent.
  double GaugeValue(std::string_view name, double fallback = 0.0) const;
};

/// Latency bucket helper: {start, start·factor, …}, `count` bounds.
std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count);

class MetricsRegistry {
 public:
  /// The process-wide registry (never destroyed; instruments referenced
  /// from function-local statics must stay valid through exit).
  static MetricsRegistry& Get();

  /// Returns the instrument with this name, creating it on first use.
  /// References stay valid for the process lifetime. Registering one name
  /// as two different instrument kinds is a fatal error.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  /// `bounds` must be strictly increasing and non-empty; a re-lookup of an
  /// existing histogram must pass identical bounds.
  Histogram& GetHistogram(std::string_view name,
                          std::span<const double> bounds);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every instrument's value (instruments stay registered, cached
  /// references stay valid). Test isolation only — production code treats
  /// counters as monotone.
  void ResetAllForTest();

 private:
  MetricsRegistry() = default;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace obs
}  // namespace cluseq

#endif  // CLUSEQ_OBS_METRICS_H_
