// Machine-readable record of one CluseqClusterer::Run.
//
// The clusterer fills a RunReport as it goes: an echo of the effective
// options, the per-iteration IterationStats alongside a metrics-registry
// snapshot taken at the end of each iteration, the final registry state,
// and the headline summary numbers. Consumers (cluseq_cli --metrics_json,
// tests, downstream analysis) serialize it with WriteRunReportJson — one
// stable JSON schema instead of scraping logs.
//
// Registry snapshots are cumulative process-wide values; to get "what did
// this run do", difference a snapshot against `baseline_metrics` (taken
// when Run() starts). The serializer emits the raw snapshots so consumers
// can make either choice.

#ifndef CLUSEQ_OBS_RUN_REPORT_H_
#define CLUSEQ_OBS_RUN_REPORT_H_

#include <ostream>
#include <string>
#include <vector>

#include "core/cluseq.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace cluseq {
namespace obs {

struct RunReport {
  /// Effective options the run executed with.
  CluseqOptions options;

  /// Input shape.
  size_t num_sequences = 0;
  size_t alphabet_size = 0;

  /// Thread count the run actually used: `options.num_threads` after the
  /// 0 = auto-detect resolution to HardwareThreads().
  size_t effective_threads = 0;

  /// Corpus source, filled by callers that load the input themselves (the
  /// CLI does): "fasta" / "tsv" / "sqdb" / "synthetic", record and on-disk
  /// byte counts, and whether the bytes are served from an mmap (true only
  /// for the .sqdb path).
  std::string corpus_format;
  size_t corpus_records = 0;
  size_t corpus_bytes = 0;
  bool corpus_mmap = false;

  /// One entry per completed iteration, parallel arrays.
  std::vector<IterationStats> iterations;
  std::vector<MetricsSnapshot> iteration_metrics;

  /// Registry state when Run() started / returned.
  MetricsSnapshot baseline_metrics;
  MetricsSnapshot final_metrics;

  /// Headline summary (mirrors ClusteringResult).
  size_t num_clusters = 0;
  size_t num_unclustered = 0;
  size_t total_iterations = 0;
  double final_log_threshold = 0.0;
  double total_seconds = 0.0;

  /// Prefilter aggregates across all iterations. `prefilter_enabled` echoes
  /// whether the run was eligible to prune (option on, batched scan, not
  /// within-scan mode); the skip ratio is skipped pairs over all n × k
  /// pairs of prefiltered iterations (0 when none pruned, e.g. because the
  /// threshold adjuster never froze).
  bool prefilter_enabled = false;
  double prefilter_skip_ratio = 0.0;
  size_t prefilter_early_exits = 0;
  /// Level-1.5 truncated-DP drops as a fraction of all pairs (subset of
  /// the skip ratio), total level-2 bound checkpoints executed, and the
  /// signature tier the bank selected under the byte budget ("unigram" /
  /// "bigram" / "trigram"; empty when no bank was assembled).
  double prefilter_l15_ratio = 0.0;
  size_t prefilter_checkpoints = 0;
  std::string prefilter_sig_tier;

  /// Whether perf_event_open counters were live for this run (the process-
  /// wide default set opened). The `summary.perf` aggregates — counter
  /// totals, rusage totals, the RSS high-water mark — are derived from the
  /// per-iteration phase records at serialization time; counter keys are
  /// omitted entirely when unavailable, so consumers distinguish "no perf"
  /// from "zero events".
  bool perf_available = false;

  /// Checkpointing summary: whether the run wrote checkpoints, how many
  /// saves landed on disk, the iteration of the newest one, whether the run
  /// started from a checkpoint, and whether it ended early on a
  /// cancellation request (SIGINT/SIGTERM or --max_seconds). `interrupted`
  /// reports are still complete and valid — they describe the last finished
  /// iteration boundary.
  bool checkpoint_enabled = false;
  size_t checkpoint_saves = 0;
  size_t checkpoint_last_iteration = 0;
  bool resumed_from_checkpoint = false;
  bool interrupted = false;

  /// External evaluation, filled by callers that have ground-truth labels
  /// (the CLI does when the input carries them).
  bool has_eval = false;
  double eval_correct_fraction = 0.0;
  double eval_macro_f1 = 0.0;
  double eval_purity = 0.0;
  double eval_nmi = 0.0;
  size_t eval_found_clusters = 0;
  size_t eval_unassigned = 0;
};

/// Serializes one registry snapshot as {"counters": {...}, "gauges": {...},
/// "histograms": [...]}. Shared by the run report and anything else that
/// wants a raw snapshot dump.
void WriteMetricsSnapshotJson(JsonWriter& writer,
                              const MetricsSnapshot& snapshot);

/// Serializes the full report as a single JSON object.
void WriteRunReportJson(const RunReport& report, std::ostream& out);
Status WriteRunReportJsonFile(const RunReport& report,
                              const std::string& path);

}  // namespace obs
}  // namespace cluseq

#endif  // CLUSEQ_OBS_RUN_REPORT_H_
