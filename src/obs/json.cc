#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace cluseq {
namespace obs {

// --- Writer ---------------------------------------------------------------

void JsonWriter::Indent() {
  out_ << '\n';
  for (size_t i = 0; i < stack_.size(); ++i) out_ << "  ";
}

void JsonWriter::BeforeValue() {
  CLUSEQ_CHECK(!done_, "JsonWriter: value after the document completed");
  if (stack_.empty()) return;
  if (stack_.back() == Frame::kObject) {
    CLUSEQ_CHECK(key_pending_, "JsonWriter: object member without Key()");
    key_pending_ = false;
    return;
  }
  // Array element: comma-separate and place on its own line.
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  Indent();
}

void JsonWriter::Key(std::string_view key) {
  CLUSEQ_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
               "JsonWriter: Key() outside an object");
  CLUSEQ_CHECK(!key_pending_, "JsonWriter: Key() twice without a value");
  if (has_items_.back()) out_ << ',';
  has_items_.back() = true;
  Indent();
  out_ << '"';
  WriteEscaped(key);
  out_ << "\": ";
  key_pending_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  out_ << '{';
  stack_.push_back(Frame::kObject);
  has_items_.push_back(false);
}

void JsonWriter::EndObject() {
  CLUSEQ_CHECK(!stack_.empty() && stack_.back() == Frame::kObject,
               "JsonWriter: EndObject() without matching BeginObject()");
  CLUSEQ_CHECK(!key_pending_, "JsonWriter: EndObject() with a dangling key");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ << '}';
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::BeginArray() {
  BeforeValue();
  out_ << '[';
  stack_.push_back(Frame::kArray);
  has_items_.push_back(false);
}

void JsonWriter::EndArray() {
  CLUSEQ_CHECK(!stack_.empty() && stack_.back() == Frame::kArray,
               "JsonWriter: EndArray() without matching BeginArray()");
  const bool had_items = has_items_.back();
  stack_.pop_back();
  has_items_.pop_back();
  if (had_items) Indent();
  out_ << ']';
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::WriteEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out_ << "\\\"";
        break;
      case '\\':
        out_ << "\\\\";
        break;
      case '\n':
        out_ << "\\n";
        break;
      case '\r':
        out_ << "\\r";
        break;
      case '\t':
        out_ << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ << buf;
        } else {
          out_ << c;
        }
    }
  }
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_ << '"';
  WriteEscaped(value);
  out_ << '"';
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ << value;
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ << value;
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ << "null";
  } else {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ << buf;
  }
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ << (value ? "true" : "false");
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

void JsonWriter::Null() {
  BeforeValue();
  out_ << "null";
  if (stack_.empty()) {
    out_ << '\n';
    done_ = true;
  }
}

// --- Parser ---------------------------------------------------------------

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type != Type::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Status Parse(JsonValue* out) {
    CLUSEQ_RETURN_NOT_OK(ParseValue(out, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return Status::OK();
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON parse error at offset " +
                                   std::to_string(pos_) + ": " + message);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(char c) {
    if (!Consume(c)) {
      return Error(std::string("expected '") + c + "'");
    }
    return Status::OK();
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxParseDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        out->type = JsonValue::Type::kString;
        return ParseString(&out->string_value);
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out->type = JsonValue::Type::kBool;
          out->bool_value = true;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out->type = JsonValue::Type::kBool;
          out->bool_value = false;
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out->type = JsonValue::Type::kNull;
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    CLUSEQ_RETURN_NOT_OK(Expect('{'));
    out->type = JsonValue::Type::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    for (;;) {
      SkipWhitespace();
      std::string key;
      CLUSEQ_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      CLUSEQ_RETURN_NOT_OK(Expect(':'));
      JsonValue value;
      CLUSEQ_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      CLUSEQ_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    CLUSEQ_RETURN_NOT_OK(Expect('['));
    out->type = JsonValue::Type::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    for (;;) {
      JsonValue value;
      CLUSEQ_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      out->array.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      CLUSEQ_RETURN_NOT_OK(Expect(','));
    }
  }

  Status ParseString(std::string* out) {
    CLUSEQ_RETURN_NOT_OK(Expect('"'));
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape");
            }
          }
          // ASCII-only decode; anything wider is preserved as UTF-8 bytes
          // by the writer and never escaped, so this path only sees the
          // control characters the writer itself emits.
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else {
            return Error("non-ASCII \\u escape unsupported");
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || end == token.c_str()) {
      return Error("malformed number '" + token + "'");
    }
    out->type = JsonValue::Type::kNumber;
    out->number = v;
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Status ParseJson(std::string_view text, JsonValue* out) {
  *out = JsonValue{};
  Parser parser(text);
  return parser.Parse(out);
}

Status ParseJsonFile(const std::string& path, JsonValue* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseJson(buffer.str(), out);
}

}  // namespace obs
}  // namespace cluseq
