#include "obs/prometheus.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/file_io.h"

namespace cluseq {
namespace obs {

namespace {

// Shortest round-trip decimal for a double, with the spec's spellings for
// the non-finite values.
std::string FormatValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[32];
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    // Integral values print without an exponent ("10", not "1e+01").
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  // Trim precision digits that don't change the value on re-parse.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[32];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, v);
    double back = 0.0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) return probe;
  }
  return buf;
}

std::string FormatValue(uint64_t v) { return std::to_string(v); }

bool ValidNameByte(char c, bool first) {
  if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':') {
    return true;
  }
  return !first && std::isdigit(static_cast<unsigned char>(c));
}

}  // namespace

std::string PrometheusMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (ValidNameByte(c, /*first=*/out.empty())) {
      out.push_back(c);
    } else if (out.empty() && std::isdigit(static_cast<unsigned char>(c))) {
      out.push_back('_');
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "_";
  return out;
}

void RenderPrometheusText(const MetricsSnapshot& snapshot, std::ostream& out) {
  for (const MetricsSnapshot::CounterRow& row : snapshot.counters) {
    const std::string name = PrometheusMetricName(row.name) + "_total";
    out << "# TYPE " << name << " counter\n";
    out << name << ' ' << FormatValue(row.value) << '\n';
  }
  for (const MetricsSnapshot::GaugeRow& row : snapshot.gauges) {
    const std::string name = PrometheusMetricName(row.name);
    out << "# TYPE " << name << " gauge\n";
    out << name << ' ' << FormatValue(row.value) << '\n';
  }
  for (const MetricsSnapshot::HistogramRow& row : snapshot.histograms) {
    const std::string name = PrometheusMetricName(row.name);
    out << "# TYPE " << name << " histogram\n";
    // Registry buckets are per-bucket counts with "v <= bounds[i]"
    // semantics, which matches Prometheus `le` after a cumulative sum.
    uint64_t cumulative = 0;
    for (size_t i = 0; i < row.bounds.size(); ++i) {
      if (i < row.counts.size()) cumulative += row.counts[i];
      out << name << "_bucket{le=\"" << FormatValue(row.bounds[i]) << "\"} "
          << FormatValue(cumulative) << '\n';
    }
    out << name << "_bucket{le=\"+Inf\"} " << FormatValue(row.total_count)
        << '\n';
    out << name << "_sum " << FormatValue(row.sum) << '\n';
    out << name << "_count " << FormatValue(row.total_count) << '\n';
  }
}

std::string RenderPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  RenderPrometheusText(snapshot, out);
  return out.str();
}

Status WritePrometheusTextFile(const MetricsSnapshot& snapshot,
                               const std::string& path) {
  return WriteFileAtomic(path, RenderPrometheusText(snapshot));
}

}  // namespace obs
}  // namespace cluseq
