#include "obs/metrics.h"

#include <algorithm>

#include "util/logging.h"

namespace cluseq {
namespace obs {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

void SetMetricsEnabled(bool enabled) {
  g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

uint32_t ThreadIndex() {
  static std::atomic<uint32_t> next{0};
  thread_local const uint32_t index =
      next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

// --- Histogram ------------------------------------------------------------

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)), bounds_(std::move(bounds)) {
  CLUSEQ_CHECK(!bounds_.empty(), "Histogram needs at least one bound");
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CLUSEQ_CHECK(bounds_[i] > bounds_[i - 1],
                 "Histogram bounds must be strictly increasing");
  }
  const size_t buckets = bounds_.size() + 1;
  for (auto& shard : shards_) {
    shard.counts = std::make_unique<std::atomic<uint64_t>[]>(buckets);
    for (size_t b = 0; b < buckets; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  Shard& shard = shards_[internal_metrics::ShardIndex()];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  // No atomic<double>::fetch_add pre-C++20-library support everywhere; a
  // relaxed CAS loop on the shard's private sum is equally cheap here
  // (histogram observations are phase-granular, not per-symbol).
  double sum = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(sum, sum + v,
                                          std::memory_order_relaxed)) {
  }
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> totals(bounds_.size() + 1, 0);
  for (const auto& shard : shards_) {
    for (size_t b = 0; b < totals.size(); ++b) {
      totals[b] += shard.counts[b].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

double Histogram::Sum() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    total += shard.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::ResetForTest() {
  for (auto& shard : shards_) {
    for (size_t b = 0; b < bounds_.size() + 1; ++b) {
      shard.counts[b].store(0, std::memory_order_relaxed);
    }
    shard.sum.store(0.0, std::memory_order_relaxed);
  }
}

// --- Snapshot -------------------------------------------------------------

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const CounterRow& row : counters) {
    if (row.name == name) return row.value;
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name,
                                   double fallback) const {
  for (const GaugeRow& row : gauges) {
    if (row.name == name) return row.value;
  }
  return fallback;
}

std::vector<double> ExponentialBounds(double start, double factor,
                                      size_t count) {
  CLUSEQ_CHECK(start > 0.0 && factor > 1.0 && count > 0,
               "ExponentialBounds needs start > 0, factor > 1, count > 0");
  std::vector<double> bounds(count);
  double v = start;
  for (size_t i = 0; i < count; ++i) {
    bounds[i] = v;
    v *= factor;
  }
  return bounds;
}

// --- Registry -------------------------------------------------------------

MetricsRegistry& MetricsRegistry::Get() {
  // Leaked on purpose: instruments are referenced from function-local
  // statics across the whole library and must outlive every user.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  CLUSEQ_CHECK(gauges_.find(name) == gauges_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric name already registered as a different kind");
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  CLUSEQ_CHECK(counters_.find(name) == counters_.end() &&
                   histograms_.find(name) == histograms_.end(),
               "metric name already registered as a different kind");
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  CLUSEQ_CHECK(counters_.find(name) == counters_.end() &&
                   gauges_.find(name) == gauges_.end(),
               "metric name already registered as a different kind");
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(
                          std::string(name),
                          std::vector<double>(bounds.begin(), bounds.end())))
             .first;
  } else {
    CLUSEQ_CHECK(std::equal(bounds.begin(), bounds.end(),
                            it->second->bounds().begin(),
                            it->second->bounds().end()),
                 "histogram re-registered with different bounds");
  }
  return *it->second;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snapshot;
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.push_back({name, counter->Value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.push_back({name, gauge->Value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramRow row;
    row.name = name;
    row.bounds = histogram->bounds();
    row.counts = histogram->BucketCounts();
    for (uint64_t c : row.counts) row.total_count += c;
    row.sum = histogram->Sum();
    snapshot.histograms.push_back(std::move(row));
  }
  // std::map iteration is already name-sorted; the vectors inherit it.
  return snapshot;
}

void MetricsRegistry::ResetAllForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->ResetForTest();
  for (auto& [name, gauge] : gauges_) gauge->ResetForTest();
  for (auto& [name, histogram] : histograms_) histogram->ResetForTest();
}

}  // namespace obs
}  // namespace cluseq
