// Structural comparison of two observability artifacts — run reports
// (`cluseq.run_report.v1`, the CLI's --metrics_json output) or bench
// results (`cluseq.bench.v1`, the BENCH_*.json files) — behind the
// `cluseq report-diff` subcommand and the CI perf gate.
//
// Both schemas are flattened to one sorted (dotted-key -> finite double)
// list: summary/input/eval blocks and the final counter/gauge snapshot for
// run reports, every top-level numeric or boolean member for bench files.
// A handful of derived aliases (scan.seconds, scan.symbols_per_sec,
// prefilter.skip_ratio, refrozen_clusters, peak_rss_kb) name the headline
// run-report quantities that CI thresholds want without path spelunking.
//
// The diff pairs the two flat views, computes absolute and relative deltas
// per shared key, and evaluates --fail-on rules: `metric:-10%` breaches
// when the metric *dropped* by more than 10% relative, `metric:+10%` when
// it *rose* by more, `metric:10%` on either direction, and `metric:0%` is
// an exact-equality gate. A rule whose metric is missing from either side
// — or was dropped because the JSON carried null where a number belongs
// (the writer maps NaN/Inf to null) — breaches conservatively: a gate that
// cannot be evaluated must not pass silently.

#ifndef CLUSEQ_OBS_REPORT_DIFF_H_
#define CLUSEQ_OBS_REPORT_DIFF_H_

#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "util/status.h"

namespace cluseq {
namespace obs {

/// Flat numeric view of one parsed report file.
struct ReportMetrics {
  std::string schema;  ///< "cluseq.run_report.v1" or "cluseq.bench.v1".
  std::string name;    ///< Bench name; empty for run reports.
  /// Sorted by key; values are finite.
  std::vector<std::pair<std::string, double>> values;
  /// Keys dropped because the JSON held null where a number belongs (the
  /// writer serializes NaN/Inf as null).
  std::vector<std::string> non_finite;

  /// Value lookup; returns false when the key is absent.
  bool Lookup(std::string_view key, double* out) const;
};

/// Flattens a parsed report. Fails on a missing or unrecognized schema.
Status ExtractReportMetrics(const JsonValue& root, ReportMetrics* out);

/// One --fail-on threshold.
struct FailRule {
  enum class Direction : uint8_t {
    kBoth,   ///< "metric:10%": breach when |rel delta| > tolerance.
    kBelow,  ///< "metric:-10%": breach when rel delta < -tolerance.
    kAbove,  ///< "metric:+10%": breach when rel delta > +tolerance.
  };

  std::string metric;
  double tolerance = 0.0;  ///< Relative, as a fraction (10% -> 0.1).
  Direction direction = Direction::kBoth;

  /// Accepts "metric:TOL" with TOL = [+|-]NUMBER[%]; "metric:0%" gates on
  /// exact equality.
  static Status Parse(std::string_view spec, FailRule* out);
  std::string ToString() const;
};

/// One metric present in both files.
struct MetricDelta {
  std::string name;
  double a = 0.0;
  double b = 0.0;
  double abs_delta = 0.0;  ///< b - a.
  double rel_delta = 0.0;  ///< (b - a) / |a|; ±inf when a == 0 != b.
  bool breached = false;   ///< Some rule fired on this row.
};

struct ReportDiff {
  struct Breach {
    std::string metric;
    std::string reason;  ///< Human-readable: what fired and why.
  };

  std::string schema;
  std::vector<MetricDelta> rows;        ///< Keys in both files, sorted.
  std::vector<std::string> only_in_a;   ///< Keys the B file lost.
  std::vector<std::string> only_in_b;   ///< Keys the B file gained.
  std::vector<std::string> diagnostics; ///< Non-finite keys and the like.
  std::vector<Breach> breaches;

  bool ok() const { return breaches.empty(); }
};

/// Diffs two extracted views and evaluates `rules`. Fails (Status, not
/// breach) on schema mismatch between the files or mismatched bench names
/// — comparing a run report against a bench file is a usage error, not a
/// regression.
Status ComputeReportDiff(const ReportMetrics& a, const ReportMetrics& b,
                         std::span<const FailRule> rules, ReportDiff* out);

/// Convenience: parse + extract + diff two JSON documents.
Status DiffReportFiles(const std::string& path_a, const std::string& path_b,
                       std::span<const FailRule> rules, ReportDiff* out);

/// Renders the per-metric table plus key-set changes, diagnostics, and the
/// breach list (the `report-diff` CLI output, also uploaded as a CI
/// artifact).
void PrintReportDiff(const ReportDiff& diff, std::ostream& out);

}  // namespace obs
}  // namespace cluseq

#endif  // CLUSEQ_OBS_REPORT_DIFF_H_
