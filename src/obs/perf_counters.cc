#include "obs/perf_counters.h"

#include <cmath>
#include <cstring>

#include "obs/metrics.h"
#include "util/logging.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#define CLUSEQ_PERF_EVENTS_SUPPORTED 1
#else
#define CLUSEQ_PERF_EVENTS_SUPPORTED 0
#endif

#include <sys/resource.h>
#include <sys/time.h>

namespace cluseq {
namespace obs {

namespace {

#if CLUSEQ_PERF_EVENTS_SUPPORTED
constexpr PerfEventSpec kDefaultEvents[] = {
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, "cycles"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS, "instructions"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_REFERENCES, "cache_references"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES, "cache_misses"},
    {PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES, "branch_misses"},
};
#endif

double TimevalSeconds(const timeval& tv) {
  return static_cast<double>(tv.tv_sec) +
         static_cast<double>(tv.tv_usec) * 1e-6;
}

}  // namespace

std::span<const PerfEventSpec> DefaultPerfEvents() {
#if CLUSEQ_PERF_EVENTS_SUPPORTED
  return std::span<const PerfEventSpec>(kDefaultEvents);
#else
  return {};
#endif
}

PerfCounterSet::PerfCounterSet() { Open(DefaultPerfEvents()); }

PerfCounterSet::PerfCounterSet(std::span<const PerfEventSpec> events) {
  Open(events);
}

void PerfCounterSet::Open(std::span<const PerfEventSpec> events) {
#if CLUSEQ_PERF_EVENTS_SUPPORTED
  if (events.empty() || events.size() > kMaxPerfEvents) return;
  for (const PerfEventSpec& event : events) {
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = event.type;
    attr.config = event.config;
    // One read(2) returns every group member plus the enabled/running
    // times needed to scale multiplexed windows.
    attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                       PERF_FORMAT_TOTAL_TIME_RUNNING;
    // The leader starts disabled so siblings attach before anything
    // counts; one group-wide ioctl below starts them together.
    attr.disabled = num_events_ == 0 ? 1 : 0;
    // User-space only: works under perf_event_paranoid=2, and the scan
    // loops we attribute are user-space anyway.
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    const int group_fd = num_events_ == 0 ? -1 : fds_[0];
    const long fd = syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                            /*cpu=*/-1, group_fd, /*flags=*/0UL);
    if (fd < 0) {
      // A rejected sibling (unsupported event on this PMU) is dropped; a
      // rejected leader means no perf at all (denied syscall / no PMU).
      if (num_events_ == 0) return;
      continue;
    }
    fds_[num_events_] = static_cast<int>(fd);
    names_[num_events_] = event.name;
    ++num_events_;
  }
  ioctl(fds_[0], PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(fds_[0], PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
  (void)events;
#endif
}

PerfCounterSet::~PerfCounterSet() {
#if CLUSEQ_PERF_EVENTS_SUPPORTED
  for (size_t i = 0; i < num_events_; ++i) close(fds_[i]);
#endif
}

bool PerfCounterSet::Read(PerfReading* out) const {
#if CLUSEQ_PERF_EVENTS_SUPPORTED
  if (!available()) return false;
  // PERF_FORMAT_GROUP | TOTAL_TIME_ENABLED | TOTAL_TIME_RUNNING layout:
  // { u64 nr; u64 time_enabled; u64 time_running; u64 values[nr]; }.
  uint64_t buffer[3 + kMaxPerfEvents];
  const ssize_t want =
      static_cast<ssize_t>((3 + num_events_) * sizeof(uint64_t));
  const ssize_t got = read(fds_[0], buffer, sizeof(buffer));
  if (got != want) return false;
  if (buffer[0] != num_events_) return false;
  out->num = num_events_;
  out->time_enabled_ns = buffer[1];
  out->time_running_ns = buffer[2];
  out->raw.fill(0);
  for (size_t i = 0; i < num_events_; ++i) out->raw[i] = buffer[3 + i];
  return true;
#else
  (void)out;
  return false;
#endif
}

void PerfCounterSet::Delta(const PerfReading& begin, const PerfReading& end,
                           std::array<uint64_t, kMaxPerfEvents>* out) {
  out->fill(0);
  const size_t num = std::min(begin.num, end.num);
  const uint64_t enabled = end.time_enabled_ns - begin.time_enabled_ns;
  const uint64_t running = end.time_running_ns - begin.time_running_ns;
  for (size_t i = 0; i < num; ++i) {
    const uint64_t raw = end.raw[i] - begin.raw[i];
    if (running > 0 && enabled > running) {
      // The group was multiplexed off-core for part of the window; scale
      // the observed count up to an estimate of the full window.
      (*out)[i] = static_cast<uint64_t>(std::llround(
          static_cast<double>(raw) * static_cast<double>(enabled) /
          static_cast<double>(running)));
    } else {
      (*out)[i] = raw;
    }
  }
}

PerfCounterSet& PerfCounterSet::Process() {
  static PerfCounterSet* set = [] {
    auto* s = new PerfCounterSet();
    MetricsRegistry::Get().GetGauge("perf.available")
        .Set(s->available() ? 1.0 : 0.0);
    if (!s->available()) {
      CLUSEQ_LOG(kWarning)
          << "perf_event_open unavailable (syscall denied or no PMU); "
             "hardware counters disabled, rusage phase stats still recorded";
    }
    return s;
  }();
  return *set;
}

PerfScope::PerfScope(const char* phase, PhasePerfCollector* collector,
                     const PerfCounterSet* set)
    : phase_(phase),
      collector_(collector),
      set_(set != nullptr ? set : &PerfCounterSet::Process()) {
  rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    begin_utime_ = TimevalSeconds(usage.ru_utime);
    begin_stime_ = TimevalSeconds(usage.ru_stime);
    begin_major_faults_ = static_cast<uint64_t>(usage.ru_majflt);
  }
  perf_ok_ = set_->Read(&begin_);
}

PerfScope::~PerfScope() {
  PhasePerf out;
  out.phase = phase_;
  if (perf_ok_) {
    PerfReading end;
    if (set_->Read(&end)) {
      std::array<uint64_t, kMaxPerfEvents> delta;
      PerfCounterSet::Delta(begin_, end, &delta);
      out.counters.reserve(set_->num_events());
      for (size_t i = 0; i < set_->num_events(); ++i) {
        out.counters.emplace_back(set_->event_name(i), delta[i]);
      }
    }
  }
  rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    const double utime = TimevalSeconds(usage.ru_utime);
    const double stime = TimevalSeconds(usage.ru_stime);
    out.utime_seconds = utime - begin_utime_;
    out.stime_seconds = stime - begin_stime_;
    out.major_faults =
        static_cast<uint64_t>(usage.ru_majflt) - begin_major_faults_;
    out.maxrss_kb = static_cast<uint64_t>(usage.ru_maxrss);
    // Cumulative process totals: gauges, not deltas, so the Prometheus
    // view matches what getrusage reports.
    MetricsRegistry& registry = MetricsRegistry::Get();
    static Gauge& utime_gauge = registry.GetGauge("rusage.utime_seconds");
    static Gauge& stime_gauge = registry.GetGauge("rusage.stime_seconds");
    static Gauge& maxrss_gauge = registry.GetGauge("rusage.maxrss_kb");
    static Gauge& majflt_gauge = registry.GetGauge("rusage.major_faults");
    utime_gauge.Set(utime);
    stime_gauge.Set(stime);
    maxrss_gauge.Set(static_cast<double>(usage.ru_maxrss));
    majflt_gauge.Set(static_cast<double>(usage.ru_majflt));
  }
  // Counter keys exist only when a reading succeeded: an unavailable set
  // contributes nothing, so "no perf.* keys" is the degraded signature.
  for (const auto& [name, delta] : out.counters) {
    MetricsRegistry::Get()
        .GetCounter(std::string("perf.") + phase_ + "." + name)
        .Add(delta);
  }
  if (collector_ != nullptr) collector_->Append(std::move(out));
}

}  // namespace obs
}  // namespace cluseq
