// Prometheus text exposition (format 0.0.4) over a MetricsSnapshot.
//
// The registry already snapshots to JSON for run reports; serving wants the
// same numbers in the format every scraper speaks. The renderer is a pure
// function of an immutable snapshot, so it can run off the hot path (dump a
// file the node exporter's textfile collector picks up, or back a /metrics
// handler once an HTTP front end exists).
//
// Mapping:
//   * Names: Prometheus allows [a-zA-Z_:][a-zA-Z0-9_:]*, our dotted paths
//     don't — every invalid byte ('.' included) becomes '_', and a leading
//     digit gets a '_' prefix.
//   * Counters are rendered as `<name>_total` per convention; gauges keep
//     their name.
//   * Histograms emit cumulative `<name>_bucket{le="..."}` rows (the
//     registry's per-bucket counts are summed up to each bound), the
//     mandatory `le="+Inf"` row equal to `_count`, then `_sum` and
//     `_count`.
//   * Non-finite gauge/sum values render as "+Inf"/"-Inf"/"NaN" per the
//     format spec.
// Rows come out in snapshot order (sorted by name within each kind), so
// output is deterministic for a given snapshot.

#ifndef CLUSEQ_OBS_PROMETHEUS_H_
#define CLUSEQ_OBS_PROMETHEUS_H_

#include <ostream>
#include <string>

#include "obs/metrics.h"
#include "util/status.h"

namespace cluseq {
namespace obs {

/// Renders `snapshot` in Prometheus text exposition format 0.0.4.
void RenderPrometheusText(const MetricsSnapshot& snapshot, std::ostream& out);

/// Convenience overload returning the rendered text.
std::string RenderPrometheusText(const MetricsSnapshot& snapshot);

/// Renders and writes atomically (temp file + rename), the contract the
/// node exporter textfile collector expects.
Status WritePrometheusTextFile(const MetricsSnapshot& snapshot,
                               const std::string& path);

/// Sanitized Prometheus metric name for one of our dotted instrument names
/// (exposed for tests).
std::string PrometheusMetricName(std::string_view name);

}  // namespace obs
}  // namespace cluseq

#endif  // CLUSEQ_OBS_PROMETHEUS_H_
