#include "synth/generator_model.h"

#include <algorithm>

namespace cluseq {

namespace {

// A peaked distribution: `peak` symbols share (1 - spread) of the mass, the
// rest share `spread` uniformly.
std::vector<double> PeakedDistribution(size_t n, size_t peak, double spread,
                                       Rng* rng) {
  std::vector<double> dist(n, 0.0);
  peak = std::min(std::max<size_t>(peak, 1), n);
  std::vector<size_t> chosen = rng->SampleWithoutReplacement(n, peak);
  // Random split of the peak mass.
  double remaining = 1.0 - spread;
  std::vector<double> cuts(peak);
  double total = 0.0;
  for (double& c : cuts) {
    c = 0.2 + rng->UniformDouble();
    total += c;
  }
  for (size_t i = 0; i < peak; ++i) {
    dist[chosen[i]] += remaining * cuts[i] / total;
  }
  double base = spread / static_cast<double>(n);
  for (double& d : dist) d += base;
  return dist;
}

}  // namespace

GeneratorModel GeneratorModel::Random(const Params& params, Rng* rng) {
  GeneratorModel m;
  m.alphabet_size_ = std::max<size_t>(params.alphabet_size, 2);
  m.order_ = std::max<size_t>(params.order, 1);
  const size_t n = m.alphabet_size_;

  m.initial_ = PeakedDistribution(n, std::max<size_t>(n / 3, 2),
                                  /*spread=*/0.5, rng);
  m.rows_.reserve(n);
  for (size_t s = 0; s < n; ++s) {
    m.rows_.push_back(
        PeakedDistribution(n, params.peak_symbols, params.spread, rng));
  }
  // Higher-order overrides on random contexts of length 2..order. Contexts
  // are drawn from the symbols the order-1 chain actually favors, so the
  // overrides fire frequently during generation.
  for (size_t i = 0; i < params.num_overrides && m.order_ >= 2; ++i) {
    size_t len = 2 + rng->Uniform(m.order_ - 1);
    std::vector<SymbolId> ctx(len);
    // Walk the order-1 chain to land on a plausible context.
    SymbolId cur = static_cast<SymbolId>(rng->Categorical(m.initial_));
    for (size_t j = 0; j < len; ++j) {
      ctx[j] = cur;
      cur = static_cast<SymbolId>(rng->Categorical(m.rows_[cur]));
    }
    uint64_t key = PackContext(ctx.data(), len, n + 1);
    double override_spread = params.override_spread >= 0.0
                                 ? params.override_spread
                                 : params.spread;
    m.overrides_[key] =
        PeakedDistribution(n, params.peak_symbols, override_spread, rng);
  }
  return m;
}

GeneratorModel GeneratorModel::Uniform(size_t alphabet_size) {
  GeneratorModel m;
  m.alphabet_size_ = std::max<size_t>(alphabet_size, 2);
  m.order_ = 1;
  const size_t n = m.alphabet_size_;
  m.initial_.assign(n, 1.0 / static_cast<double>(n));
  m.rows_.assign(n, m.initial_);
  return m;
}

uint64_t GeneratorModel::PackContext(const SymbolId* ctx, size_t len,
                                     size_t base) {
  uint64_t key = 0;
  for (size_t i = 0; i < len; ++i) {
    key = key * base + (ctx[i] + 1);
  }
  return key;
}

const std::vector<double>& GeneratorModel::NextDistribution(
    const std::vector<SymbolId>& history) const {
  if (history.empty()) return initial_;
  // Longest matching override (suffix of the history), then the order-1 row.
  const size_t base = alphabet_size_ + 1;
  size_t max_len = std::min(history.size(), order_);
  for (size_t len = max_len; len >= 2; --len) {
    uint64_t key =
        PackContext(history.data() + history.size() - len, len, base);
    auto it = overrides_.find(key);
    if (it != overrides_.end()) return it->second;
  }
  return rows_[history.back()];
}

std::vector<SymbolId> GeneratorModel::Generate(size_t length,
                                               Rng* rng) const {
  std::vector<SymbolId> out;
  out.reserve(length);
  std::vector<SymbolId> history;
  history.reserve(order_);
  for (size_t i = 0; i < length; ++i) {
    const std::vector<double>& dist = NextDistribution(history);
    SymbolId s = static_cast<SymbolId>(rng->Categorical(dist));
    out.push_back(s);
    history.push_back(s);
    if (history.size() > order_) {
      history.erase(history.begin());
    }
  }
  return out;
}

}  // namespace cluseq
