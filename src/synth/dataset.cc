#include "synth/dataset.h"

#include <string>

namespace cluseq {

SequenceDatabase MakeSyntheticDataset(const SyntheticDatasetOptions& options) {
  SequenceDatabase db(Alphabet::Synthetic(options.alphabet_size));
  Rng rng(options.seed);

  size_t min_len =
      options.min_length > 0 ? options.min_length : options.avg_length / 2;
  size_t max_len =
      options.max_length > 0 ? options.max_length : options.avg_length * 2;
  if (min_len == 0) min_len = 1;
  if (max_len < min_len) max_len = min_len;

  GeneratorModel::Params params;
  params.alphabet_size = options.alphabet_size;
  params.order = options.markov_order;
  params.num_overrides = options.overrides_per_cluster;
  params.spread = options.spread;
  params.peak_symbols = options.peak_symbols;

  for (size_t c = 0; c < options.num_clusters; ++c) {
    GeneratorModel model = GeneratorModel::Random(params, &rng);
    for (size_t i = 0; i < options.sequences_per_cluster; ++i) {
      size_t len = rng.Length(options.avg_length, min_len, max_len);
      db.Add(Sequence(model.Generate(len, &rng),
                      "c" + std::to_string(c) + "_" + std::to_string(i),
                      static_cast<Label>(c)));
    }
  }

  size_t clustered_total =
      options.num_clusters * options.sequences_per_cluster;
  size_t num_outliers = static_cast<size_t>(
      options.outlier_fraction * static_cast<double>(clustered_total));
  GeneratorModel noise = GeneratorModel::Uniform(options.alphabet_size);
  for (size_t i = 0; i < num_outliers; ++i) {
    size_t len = rng.Length(options.avg_length, min_len, max_len);
    db.Add(Sequence(noise.Generate(len, &rng), "out" + std::to_string(i),
                    kNoLabel));
  }
  return db;
}

}  // namespace cluseq
