#include "synth/protein_like.h"

#include <algorithm>
#include <cmath>

#include "synth/generator_model.h"
#include "util/rng.h"

namespace cluseq {

namespace {

// The paper's Table 3 family names and sizes (the ten shown), continued
// with an interpolated ladder down to the stated minimum of ~140.
struct FamilySpec {
  const char* name;
  size_t size;
};

constexpr FamilySpec kPaperFamilies[] = {
    {"ig", 884},      {"pkinase", 725}, {"globin", 681},
    {"7tm_1", 515},   {"homeobox", 383}, {"efhand", 320},
    {"RuBisCO_large", 311},
};
constexpr size_t kNumNamed = sizeof(kPaperFamilies) / sizeof(FamilySpec);
constexpr FamilySpec kTailFamilies[] = {
    {"gluts", 144}, {"actin", 142}, {"rrm", 141},
};
constexpr size_t kNumTail = sizeof(kTailFamilies) / sizeof(FamilySpec);

constexpr char kAminoAcids[] = "ACDEFGHIKLMNPQRSTVWY";

}  // namespace

ProteinLikeDataset MakeProteinLikeDataset(const ProteinLikeOptions& options) {
  ProteinLikeDataset out;
  out.db = SequenceDatabase(Alphabet::FromChars(kAminoAcids));
  Rng rng(options.seed);
  const size_t alphabet_size = out.db.alphabet().size();
  const size_t families = std::max<size_t>(options.num_families, 1);

  // Family size ladder: named head, interpolated middle, named tail.
  for (size_t f = 0; f < families; ++f) {
    if (f < kNumNamed) {
      out.family_names.emplace_back(kPaperFamilies[f].name);
      out.family_sizes.push_back(kPaperFamilies[f].size);
    } else if (families - f <= kNumTail) {
      const FamilySpec& spec = kTailFamilies[kNumTail - (families - f)];
      out.family_names.emplace_back(spec.name);
      out.family_sizes.push_back(spec.size);
    } else {
      out.family_names.push_back("fam" + std::to_string(f));
      // Linear interpolation between ~300 and ~150 over the middle block.
      double frac = static_cast<double>(f - kNumNamed) /
                    std::max<double>(1.0, static_cast<double>(
                                              families - kNumNamed - kNumTail));
      out.family_sizes.push_back(
          static_cast<size_t>(300.0 - 150.0 * frac));
    }
  }

  // Weak order-1 rows with strong high-order overrides: real protein
  // families are not separable by residue frequencies alone — the signal
  // lives in conserved local context (motifs, k-mer grammar). This also
  // keeps small HMMs from trivially modeling a family.
  GeneratorModel::Params params;
  params.alphabet_size = alphabet_size;
  params.order = 5;
  params.num_overrides = 90;
  params.spread = 0.75;
  params.peak_symbols = 3;
  params.override_spread = 0.2;

  for (size_t f = 0; f < families; ++f) {
    GeneratorModel model = GeneratorModel::Random(params, &rng);

    // Family-conserved motifs.
    std::vector<std::vector<SymbolId>> motifs(options.motifs_per_family);
    for (auto& motif : motifs) {
      motif.resize(std::max<size_t>(options.motif_length, 2));
      for (auto& s : motif) {
        s = static_cast<SymbolId>(rng.Uniform(alphabet_size));
      }
    }

    size_t count = std::max<size_t>(
        1, static_cast<size_t>(std::llround(
               options.scale * static_cast<double>(out.family_sizes[f]))));
    out.family_sizes[f] = count;  // Report the scaled size.
    for (size_t i = 0; i < count; ++i) {
      size_t len = rng.Length(options.avg_length, options.avg_length / 2,
                              options.avg_length * 2);
      std::vector<SymbolId> seq = model.Generate(len, &rng);
      // Splice in conserved motifs (possibly repeated).
      if (!motifs.empty() && options.motif_rate > 0.0) {
        size_t insertions = static_cast<size_t>(options.motif_rate);
        if (rng.UniformDouble() <
            options.motif_rate - std::floor(options.motif_rate)) {
          ++insertions;
        }
        for (size_t m = 0; m < insertions; ++m) {
          const auto& motif = motifs[rng.Uniform(motifs.size())];
          if (seq.size() < motif.size()) break;
          size_t pos = rng.Uniform(seq.size() - motif.size() + 1);
          std::copy(motif.begin(), motif.end(),
                    seq.begin() + static_cast<long>(pos));
        }
      }
      out.db.Add(Sequence(std::move(seq),
                          out.family_names[f] + "_" + std::to_string(i),
                          static_cast<Label>(f)));
    }
  }
  return out;
}

}  // namespace cluseq
