#include "synth/language_like.h"

#include <algorithm>

#include "util/rng.h"

namespace cluseq {

namespace {

struct WeightedUnit {
  const char* text;
  double weight;
};

// English-like: frequent words and morphemes — yields the th/he/er/ion/ing
// bigram and trigram statistics the paper calls out as England's signature.
constexpr WeightedUnit kEnglishUnits[] = {
    {"the", 10}, {"and", 6},  {"that", 3}, {"have", 2},  {"with", 3},
    {"this", 2}, {"from", 2}, {"they", 2}, {"would", 1}, {"there", 2},
    {"their", 2}, {"what", 1}, {"about", 2}, {"which", 2}, {"when", 2},
    {"tion", 4}, {"ing", 5},  {"ment", 2}, {"ness", 1},  {"able", 1},
    {"ther", 2}, {"ough", 1}, {"ould", 1}, {"ight", 1},  {"ation", 2},
    {"for", 3},  {"not", 2},  {"are", 3},  {"but", 2},   {"was", 3},
    {"you", 2},  {"all", 2},  {"can", 1},  {"her", 2},   {"one", 1},
    {"our", 1},  {"out", 1},  {"day", 1},  {"get", 1},   {"has", 1},
    {"him", 1},  {"his", 2},  {"how", 1},  {"man", 1},   {"new", 1},
    {"now", 1},  {"old", 1},  {"see", 1},  {"two", 1},   {"way", 1},
    {"who", 1},  {"said", 2}, {"each", 1}, {"she", 1},   {"were", 2},
    {"been", 1}, {"more", 1}, {"some", 1}, {"time", 1},  {"very", 1},
};

// Japanese-like romaji: kana syllables; every unit is (consonant cluster +
// vowel) or a bare vowel/n, giving the vowel-consonant alternation rule.
constexpr WeightedUnit kJapaneseUnits[] = {
    {"a", 3},   {"i", 4},   {"u", 3},   {"e", 2},   {"o", 3},
    {"ka", 4},  {"ki", 3},  {"ku", 3},  {"ke", 2},  {"ko", 4},
    {"sa", 2},  {"shi", 4}, {"su", 3},  {"se", 2},  {"so", 2},
    {"ta", 3},  {"chi", 2}, {"tsu", 3}, {"te", 3},  {"to", 4},
    {"na", 3},  {"ni", 4},  {"nu", 1},  {"ne", 2},  {"no", 5},
    {"ha", 2},  {"hi", 2},  {"fu", 1},  {"he", 1},  {"ho", 2},
    {"ma", 3},  {"mi", 2},  {"mu", 1},  {"me", 2},  {"mo", 3},
    {"ya", 2},  {"yu", 2},  {"yo", 2},  {"ra", 2},  {"ri", 2},
    {"ru", 3},  {"re", 2},  {"ro", 2},  {"wa", 3},  {"n", 4},
    {"ga", 3},  {"gi", 1},  {"gu", 1},  {"ge", 1},  {"go", 2},
    {"za", 1},  {"ji", 2},  {"zu", 1},  {"ze", 1},  {"zo", 1},
    {"da", 2},  {"de", 3},  {"do", 2},  {"ba", 1},  {"bi", 1},
    {"bu", 1},  {"be", 1},  {"bo", 1},  {"kai", 2}, {"sha", 2},
    {"shu", 1}, {"sho", 2}, {"kyo", 2}, {"ryo", 1}, {"nichi", 1},
};

// Chinese-pinyin-like: full pinyin syllables with zh/ch/sh initials and
// ng finals / ao ai vowel clusters.
constexpr WeightedUnit kChineseUnits[] = {
    {"zhong", 3}, {"guo", 3},  {"shi", 5},  {"de", 6},   {"zai", 3},
    {"ren", 3},   {"you", 3},  {"ta", 2},   {"men", 3},  {"zhe", 3},
    {"ge", 3},    {"wo", 2},   {"bu", 3},   {"le", 4},   {"dao", 2},
    {"shang", 2}, {"xia", 2},  {"jiu", 2},  {"hui", 2},  {"yao", 2},
    {"jing", 2},  {"cheng", 2}, {"xiang", 2}, {"sheng", 2}, {"zhang", 2},
    {"wang", 2},  {"yang", 2}, {"qing", 2}, {"ming", 2}, {"xing", 2},
    {"tian", 2},  {"nian", 2}, {"jian", 2}, {"xian", 2}, {"dian", 1},
    {"hao", 2},   {"gao", 2},  {"mao", 1},  {"zhao", 2}, {"chao", 1},
    {"bai", 1},   {"mai", 1},  {"kai", 2},  {"tai", 2},  {"zhai", 1},
    {"dui", 2},   {"shui", 1}, {"zhui", 1}, {"chang", 2}, {"huang", 1},
    {"chuang", 1}, {"shuang", 1}, {"gong", 2}, {"dong", 2}, {"zhou", 2},
    {"chou", 1},  {"shou", 2}, {"rou", 1},  {"nong", 1}, {"feng", 2},
    {"deng", 1},  {"zheng", 2}, {"cai", 1}, {"zi", 3},   {"ci", 1},
    {"si", 2},    {"ri", 1},   {"er", 2},   {"an", 2},   {"en", 1},
};

std::string GenerateFromUnits(const WeightedUnit* units, size_t num_units,
                              size_t length, Rng* rng) {
  std::vector<double> weights(num_units);
  for (size_t i = 0; i < num_units; ++i) weights[i] = units[i].weight;
  std::string out;
  out.reserve(length + 8);
  while (out.size() < length) {
    out += units[rng->Categorical(weights)].text;
  }
  out.resize(length);
  return out;
}

std::string GenerateNoiseSentence(size_t length, Rng* rng) {
  // A random skewed letter source per sentence ("some other language").
  std::vector<double> weights(26);
  for (double& w : weights) w = rng->UniformDouble() * rng->UniformDouble();
  std::string out;
  out.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    out.push_back(static_cast<char>('a' + rng->Categorical(weights)));
  }
  return out;
}

std::string GenerateSentenceImpl(LanguageId language, size_t length,
                                 Rng* rng) {
  switch (language) {
    case LanguageId::kEnglish:
      return GenerateFromUnits(kEnglishUnits,
                               std::size(kEnglishUnits), length, rng);
    case LanguageId::kChinese:
      return GenerateFromUnits(kChineseUnits,
                               std::size(kChineseUnits), length, rng);
    case LanguageId::kJapanese:
      return GenerateFromUnits(kJapaneseUnits,
                               std::size(kJapaneseUnits), length, rng);
  }
  return {};
}

}  // namespace

std::string GenerateSentence(LanguageId language, size_t length,
                             uint64_t seed) {
  Rng rng(seed);
  return GenerateSentenceImpl(language, length, &rng);
}

LanguageLikeDataset MakeLanguageLikeDataset(
    const LanguageLikeOptions& options) {
  LanguageLikeDataset out;
  out.language_names = {"english", "chinese", "japanese"};
  out.db = SequenceDatabase(Alphabet::FromChars("abcdefghijklmnopqrstuvwxyz"));
  Rng rng(options.seed);

  size_t lo = std::max<size_t>(options.min_sentence_length, 4);
  size_t hi = std::max(options.max_sentence_length, lo);
  const LanguageId languages[] = {LanguageId::kEnglish, LanguageId::kChinese,
                                  LanguageId::kJapanese};
  for (LanguageId lang : languages) {
    for (size_t i = 0; i < options.sentences_per_language; ++i) {
      size_t len = lo + rng.Uniform(hi - lo + 1);
      std::string text = GenerateSentenceImpl(lang, len, &rng);
      Status st = out.db.AddText(
          text,
          out.language_names[static_cast<size_t>(lang)] + "_" +
              std::to_string(i),
          static_cast<Label>(lang));
      (void)st;  // Lowercase a-z is always encodable.
    }
  }
  for (size_t i = 0; i < options.noise_sentences; ++i) {
    size_t len = lo + rng.Uniform(hi - lo + 1);
    Status st = out.db.AddText(GenerateNoiseSentence(len, &rng),
                               "noise_" + std::to_string(i), kNoLabel);
    (void)st;
  }
  return out;
}

}  // namespace cluseq
