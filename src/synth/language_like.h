// Language-like sentence dataset: the stand-in for the paper's three-way
// natural-language experiment (Table 4: 600 romanized sentences each of
// English, Chinese and Japanese from news sites, spaces removed, plus 100
// noise sentences from other languages).
//
// Each language is a stylized letter-transition source over 'a'..'z' that
// encodes exactly the discriminative features the paper names (§6.1):
//   * English-like: realistic letter frequencies with strong th/he/er/ion…
//     bigram boosts;
//   * Japanese-like (romaji): strict consonant→vowel alternation built from
//     kana-style syllables (ka, shi, tsu, …);
//   * Chinese-pinyin-like: pinyin syllable inventory (zh/ch/sh initials,
//     ng finals, ao/ai vowel clusters).
// Noise sentences come from random Markov sources ("other languages").

#ifndef CLUSEQ_SYNTH_LANGUAGE_LIKE_H_
#define CLUSEQ_SYNTH_LANGUAGE_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence_database.h"

namespace cluseq {

enum class LanguageId : int32_t { kEnglish = 0, kChinese = 1, kJapanese = 2 };

struct LanguageLikeOptions {
  size_t sentences_per_language = 600;
  size_t noise_sentences = 100;
  size_t min_sentence_length = 40;
  size_t max_sentence_length = 120;
  uint64_t seed = 42;
};

struct LanguageLikeDataset {
  SequenceDatabase db;
  /// Label values 0/1/2 map to these names; noise sentences carry kNoLabel.
  std::vector<std::string> language_names;  // {"english","chinese","japanese"}
};

LanguageLikeDataset MakeLanguageLikeDataset(const LanguageLikeOptions& options);

/// Generates one sentence (lowercase letters, no spaces) of the given
/// language; exposed for tests and examples.
std::string GenerateSentence(LanguageId language, size_t length,
                             uint64_t seed);

}  // namespace cluseq

#endif  // CLUSEQ_SYNTH_LANGUAGE_LIKE_H_
