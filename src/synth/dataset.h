// Clustered synthetic dataset factory (the workload of paper §6.2–§6.4).
//
// Embeds `num_clusters` GeneratorModel sources, draws a configurable number
// of sequences from each, injects uniformly-random outlier sequences, and
// labels everything with ground truth for evaluation.

#ifndef CLUSEQ_SYNTH_DATASET_H_
#define CLUSEQ_SYNTH_DATASET_H_

#include <cstdint>

#include "seq/sequence_database.h"
#include "synth/generator_model.h"

namespace cluseq {

struct SyntheticDatasetOptions {
  size_t num_clusters = 10;
  size_t sequences_per_cluster = 50;
  size_t alphabet_size = 20;
  size_t avg_length = 200;
  /// Lengths are Gaussian around avg, clamped to [min, max]; 0 defaults to
  /// avg/2 and 2*avg respectively.
  size_t min_length = 0;
  size_t max_length = 0;
  /// Fraction of *additional* outlier sequences relative to the clustered
  /// total (paper: 1%–20%).
  double outlier_fraction = 0.05;
  /// Source structure (see GeneratorModel::Params).
  size_t markov_order = 3;
  size_t overrides_per_cluster = 30;
  double spread = 0.3;
  size_t peak_symbols = 3;
  uint64_t seed = 42;
};

/// Builds the dataset. Sequence labels are the cluster index in
/// [0, num_clusters); outliers carry kNoLabel.
SequenceDatabase MakeSyntheticDataset(const SyntheticDatasetOptions& options);

}  // namespace cluseq

#endif  // CLUSEQ_SYNTH_DATASET_H_
