// Protein-family-like dataset: the stand-in for the paper's SWISS-PROT
// experiment (8000 proteins, 30 families, sizes 140–900; Tables 2 and 3).
//
// Each family is a distinct variable-order Markov source over the 20-letter
// amino-acid alphabet, with family-specific *conserved motifs* — short fixed
// segments spliced into every member at random positions — mimicking the
// conserved regions that make real protein families clusterable by
// sequential statistics. Family sizes follow the paper's skewed size ladder
// (ig 884 ... rrm 141), scaled by `scale`.

#ifndef CLUSEQ_SYNTH_PROTEIN_LIKE_H_
#define CLUSEQ_SYNTH_PROTEIN_LIKE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "seq/sequence_database.h"

namespace cluseq {

struct ProteinLikeOptions {
  size_t num_families = 30;
  /// Multiplier on the paper's family sizes (1.0 → ~8000 sequences total;
  /// the default 0.1 → ~800).
  double scale = 0.1;
  size_t avg_length = 200;
  size_t motifs_per_family = 3;
  size_t motif_length = 10;
  /// Expected motif insertions per sequence.
  double motif_rate = 3.5;
  uint64_t seed = 42;
};

struct ProteinLikeDataset {
  SequenceDatabase db;
  /// Family names aligned with label values; the first ten follow the
  /// paper's Table 3 (ig, pkinase, globin, ...).
  std::vector<std::string> family_names;
  std::vector<size_t> family_sizes;
};

ProteinLikeDataset MakeProteinLikeDataset(const ProteinLikeOptions& options);

}  // namespace cluseq

#endif  // CLUSEQ_SYNTH_PROTEIN_LIKE_H_
