// Variable-order Markov sources for synthetic cluster generation.
//
// The paper's synthetic data embeds each cluster as "sequences all generated
// according to the same probabilistic suffix tree" (§6.4). A GeneratorModel
// is exactly such a source: a skewed order-1 transition matrix (every row a
// peaked distribution) plus a set of higher-order context overrides, so the
// generated sequences have cluster-specific conditional probability
// structure at several context lengths — the signal CLUSEQ's PSTs pick up.

#ifndef CLUSEQ_SYNTH_GENERATOR_MODEL_H_
#define CLUSEQ_SYNTH_GENERATOR_MODEL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "seq/alphabet.h"
#include "util/rng.h"

namespace cluseq {

class GeneratorModel {
 public:
  struct Params {
    size_t alphabet_size = 20;
    /// Maximum override-context length (>= 1; 1 disables overrides).
    size_t order = 3;
    /// Number of higher-order context overrides embedded in the source.
    size_t num_overrides = 30;
    /// Peakedness of the order-1 rows: each row concentrates roughly
    /// (1 - spread) of its mass on `peak_symbols` symbols.
    double spread = 0.3;
    size_t peak_symbols = 3;
    /// Peakedness of the higher-order overrides; defaults to `spread` when
    /// negative. Setting this much lower than `spread` puts the source's
    /// signal into deep contexts (weak order-1, strong order-2+), the
    /// regime where variable-order models shine over small HMMs.
    double override_spread = -1.0;
  };

  /// Draws a random source. Distinct seeds/rng states give statistically
  /// distinguishable sources with overwhelming probability.
  static GeneratorModel Random(const Params& params, Rng* rng);

  /// Uniform memoryless source (used for outlier sequences).
  static GeneratorModel Uniform(size_t alphabet_size);

  /// Generates a sequence of exactly `length` symbols.
  std::vector<SymbolId> Generate(size_t length, Rng* rng) const;

  /// Next-symbol distribution given the trailing context (longest matching
  /// override wins, then the order-1 row). Exposed for tests.
  const std::vector<double>& NextDistribution(
      const std::vector<SymbolId>& history) const;

  size_t alphabet_size() const { return alphabet_size_; }
  size_t order() const { return order_; }
  size_t num_overrides() const { return overrides_.size(); }

 private:
  GeneratorModel() = default;

  static uint64_t PackContext(const SymbolId* ctx, size_t len, size_t base);

  size_t alphabet_size_ = 0;
  size_t order_ = 1;
  std::vector<double> initial_;                 // n
  std::vector<std::vector<double>> rows_;       // n rows of n
  // Packed context (length 2..order, most recent symbol last) -> dist.
  std::unordered_map<uint64_t, std::vector<double>> overrides_;
};

}  // namespace cluseq

#endif  // CLUSEQ_SYNTH_GENERATOR_MODEL_H_
