#include "baselines/baseline_clusterers.h"

#include <span>

#include "baselines/edit_distance.h"
#include "baselines/kmedoids.h"

namespace cluseq {

Status EditDistanceCluster(const SequenceStore& db,
                           const DistanceClusterOptions& options,
                           std::vector<int32_t>* assignment) {
  KMedoidsOptions km;
  km.num_clusters = options.num_clusters;
  km.max_iterations = options.max_iterations;
  km.seed = options.seed;
  KMedoidsResult result;
  auto distance = [&db](size_t a, size_t b) {
    return static_cast<double>(EditDistance(db.Symbols(a), db.Symbols(b)));
  };
  CLUSEQ_RETURN_NOT_OK(KMedoids(db.size(), distance, km, &result));
  *assignment = std::move(result.assignment);
  return Status::OK();
}

Status BlockEditCluster(const SequenceStore& db,
                        const DistanceClusterOptions& options,
                        const BlockEditOptions& block_options,
                        std::vector<int32_t>* assignment) {
  KMedoidsOptions km;
  km.num_clusters = options.num_clusters;
  km.max_iterations = options.max_iterations;
  km.seed = options.seed;
  KMedoidsResult result;
  auto distance = [&db, &block_options](size_t a, size_t b) {
    return BlockEditDistance(db.Symbols(a), db.Symbols(b), block_options)
        .distance;
  };
  CLUSEQ_RETURN_NOT_OK(KMedoids(db.size(), distance, km, &result));
  *assignment = std::move(result.assignment);
  return Status::OK();
}

}  // namespace cluseq
