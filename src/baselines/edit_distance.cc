#include "baselines/edit_distance.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace cluseq {

size_t EditDistance(std::span<const SymbolId> a,
                    std::span<const SymbolId> b) {
  // Keep the shorter sequence as the DP row.
  if (a.size() < b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (m == 0) return n;

  std::vector<size_t> row(m + 1);
  for (size_t j = 0; j <= m; ++j) row[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    size_t diag = row[0];  // D[i-1][j-1]
    row[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t up = row[j];  // D[i-1][j]
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[j] = std::min({row[j - 1] + 1, up + 1, diag + cost});
      diag = up;
    }
  }
  return row[m];
}

size_t BandedEditDistance(std::span<const SymbolId> a,
                          std::span<const SymbolId> b, size_t band) {
  if (a.size() < b.size()) std::swap(a, b);
  const size_t n = a.size();
  const size_t m = b.size();
  if (n - m > band) return band + 1;  // Distance must exceed the band.
  if (m == 0) return n;

  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  std::vector<size_t> row(m + 1, kInf);
  std::vector<size_t> prev(m + 1, kInf);
  for (size_t j = 0; j <= std::min(m, band); ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(row.begin(), row.end(), kInf);
    size_t j_lo = i > band ? i - band : 0;
    size_t j_hi = std::min(m, i + band);
    if (j_lo == 0) row[0] = i;
    for (size_t j = std::max<size_t>(j_lo, 1); j <= j_hi; ++j) {
      size_t cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      size_t best = prev[j - 1] + cost;  // Substitution / match.
      if (prev[j] != kInf) best = std::min(best, prev[j] + 1);  // Delete.
      if (row[j - 1] != kInf) best = std::min(best, row[j - 1] + 1);  // Ins.
      row[j] = best;
    }
    row.swap(prev);
  }
  return std::min(prev[m], band + 1);
}

double NormalizedEditDistance(std::span<const SymbolId> a,
                              std::span<const SymbolId> b) {
  size_t denom = std::max(a.size(), b.size());
  if (denom == 0) return 0.0;
  return static_cast<double>(EditDistance(a, b)) /
         static_cast<double>(denom);
}

}  // namespace cluseq
