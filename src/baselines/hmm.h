// Discrete hidden Markov model baseline.
//
// A first-order HMM with S hidden states and discrete emissions over the
// sequence alphabet, trained with Baum-Welch (scaled forward-backward).
// Clustering uses a mixture-of-HMMs with hard assignments: k models are
// initialized from a random partition, each sequence is assigned to the
// model with the highest per-symbol log-likelihood, and the models are
// re-trained on their members until assignments stabilize. This is the HMM
// column of the paper's Table 2 (and is, as the paper observes, expensive).

#ifndef CLUSEQ_BASELINES_HMM_H_
#define CLUSEQ_BASELINES_HMM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "seq/sequence_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cluseq {

class Hmm {
 public:
  /// Constructs an HMM with uniform parameters.
  Hmm(size_t num_states, size_t alphabet_size);

  /// Randomizes parameters (row-stochastic, strictly positive).
  void RandomInit(Rng* rng);

  size_t num_states() const { return num_states_; }
  size_t alphabet_size() const { return alphabet_size_; }

  /// log P(sequence | model) via the scaled forward algorithm.
  /// Returns -inf for an empty sequence.
  double LogLikelihood(std::span<const SymbolId> symbols) const;

  /// Per-symbol normalized log-likelihood (comparable across lengths).
  double LogLikelihoodPerSymbol(std::span<const SymbolId> symbols) const;

  /// One Baum-Welch EM pass over the training set; returns the total
  /// log-likelihood *before* the update.
  double BaumWelchStep(const std::vector<std::span<const SymbolId>>& data);

  /// Runs Baum-Welch until the log-likelihood improvement drops below
  /// `tol` or `max_iters` passes. Returns the final log-likelihood.
  double Train(const std::vector<std::span<const SymbolId>>& data,
               size_t max_iters = 20, double tol = 1e-3);

  // Parameter access (tests / serialization).
  double initial(size_t s) const { return pi_[s]; }
  double transition(size_t from, size_t to) const {
    return a_[from * num_states_ + to];
  }
  double emission(size_t state, SymbolId symbol) const {
    return b_[state * alphabet_size_ + symbol];
  }

 private:
  // Scaled forward pass; fills alpha (T x S) and per-step scale factors.
  // Returns log-likelihood.
  double Forward(std::span<const SymbolId> symbols,
                 std::vector<double>* alpha,
                 std::vector<double>* scale) const;
  void Backward(std::span<const SymbolId> symbols,
                const std::vector<double>& scale,
                std::vector<double>* beta) const;

  size_t num_states_;
  size_t alphabet_size_;
  std::vector<double> pi_;  // S
  std::vector<double> a_;   // S x S row-major
  std::vector<double> b_;   // S x n row-major
};

struct HmmClusterOptions {
  size_t num_clusters = 2;
  size_t num_states = 4;
  size_t em_iters_per_round = 5;   ///< Baum-Welch passes per refit.
  size_t max_rounds = 10;          ///< Assignment/refit alternations.
  uint64_t seed = 42;
};

/// Mixture-of-HMMs hard clustering; fills `assignment` with ids in [0, k).
Status HmmCluster(const SequenceStore& db, const HmmClusterOptions& options,
                  std::vector<int32_t>* assignment);

}  // namespace cluseq

#endif  // CLUSEQ_BASELINES_HMM_H_
