// k-medoids clustering (Voronoi iteration, Park & Jun style) over an
// arbitrary pairwise distance.
//
// Used to turn the distance-based baselines (edit distance, block edit
// distance) into clusterers: assign every object to its nearest medoid, then
// re-center each cluster on the member minimizing the total within-cluster
// distance, until assignments stabilize. Distances are computed through a
// callback and memoized, since edit-distance evaluations dominate the cost.

#ifndef CLUSEQ_BASELINES_KMEDOIDS_H_
#define CLUSEQ_BASELINES_KMEDOIDS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace cluseq {

struct KMedoidsOptions {
  size_t num_clusters = 2;
  size_t max_iterations = 20;
  uint64_t seed = 42;
};

/// Distance oracle: must be symmetric and non-negative; called O(n·k·iters)
/// times (results are memoized internally by the solver).
using DistanceFn = std::function<double(size_t, size_t)>;

struct KMedoidsResult {
  std::vector<int32_t> assignment;  ///< Cluster id per object, in [0, k).
  std::vector<size_t> medoids;      ///< Object index of each medoid.
  double total_cost = 0.0;          ///< Sum of distances to assigned medoid.
};

/// Clusters `n` objects. Initialization is k-medoids++ (distance-weighted).
Status KMedoids(size_t n, const DistanceFn& distance,
                const KMedoidsOptions& options, KMedoidsResult* result);

}  // namespace cluseq

#endif  // CLUSEQ_BASELINES_KMEDOIDS_H_
