#include "baselines/kmedoids.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

namespace cluseq {

namespace {

// Memoizing symmetric distance cache.
class DistanceCache {
 public:
  DistanceCache(size_t n, const DistanceFn& fn) : n_(n), fn_(fn) {}

  double Get(size_t a, size_t b) {
    if (a == b) return 0.0;
    uint64_t key = a < b ? (static_cast<uint64_t>(a) * n_ + b)
                         : (static_cast<uint64_t>(b) * n_ + a);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    double d = fn_(a, b);
    cache_.emplace(key, d);
    return d;
  }

 private:
  size_t n_;
  const DistanceFn& fn_;
  std::unordered_map<uint64_t, double> cache_;
};

}  // namespace

Status KMedoids(size_t n, const DistanceFn& distance,
                const KMedoidsOptions& options, KMedoidsResult* result) {
  result->assignment.assign(n, -1);
  result->medoids.clear();
  result->total_cost = 0.0;
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (n == 0) return Status::OK();
  const size_t k = std::min(options.num_clusters, n);

  DistanceCache cache(n, distance);
  Rng rng(options.seed);

  // k-medoids++ initialization: first medoid random, then weighted by the
  // squared distance to the nearest already-chosen medoid.
  std::vector<size_t>& medoids = result->medoids;
  medoids.push_back(rng.Uniform(n));
  std::vector<double> min_dist(n, std::numeric_limits<double>::infinity());
  while (medoids.size() < k) {
    for (size_t i = 0; i < n; ++i) {
      min_dist[i] = std::min(min_dist[i], cache.Get(i, medoids.back()));
    }
    std::vector<double> weights(n);
    for (size_t i = 0; i < n; ++i) weights[i] = min_dist[i] * min_dist[i];
    size_t next = rng.Categorical(weights);
    medoids.push_back(next);
  }

  std::vector<int32_t>& assign = result->assignment;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    // Assignment step.
    bool changed = false;
    double cost = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int32_t best_c = 0;
      for (size_t c = 0; c < medoids.size(); ++c) {
        double d = cache.Get(i, medoids[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (assign[i] != best_c) {
        assign[i] = best_c;
        changed = true;
      }
      cost += best;
    }
    result->total_cost = cost;
    if (!changed && iter > 0) break;

    // Update step: re-center each cluster on its cost-minimizing member.
    std::vector<std::vector<size_t>> members(medoids.size());
    for (size_t i = 0; i < n; ++i) {
      members[static_cast<size_t>(assign[i])].push_back(i);
    }
    for (size_t c = 0; c < medoids.size(); ++c) {
      if (members[c].empty()) {
        medoids[c] = rng.Uniform(n);  // Re-seed an empty cluster.
        continue;
      }
      double best_total = std::numeric_limits<double>::infinity();
      size_t best_m = medoids[c];
      for (size_t candidate : members[c]) {
        double total = 0.0;
        for (size_t other : members[c]) {
          total += cache.Get(candidate, other);
          if (total >= best_total) break;
        }
        if (total < best_total) {
          best_total = total;
          best_m = candidate;
        }
      }
      medoids[c] = best_m;
    }
  }
  return Status::OK();
}

}  // namespace cluseq
