// Approximate edit distance with block operations (the EDBO baseline).
//
// Computing the exact edit distance with block moves is NP-hard
// (Muthukrishnan & Sahinalp, paper reference [21]), so — like every
// practical system — we approximate. The approximation here is greedy
// string tiling (GST): repeatedly find the longest common substring of the
// still-unmatched portions of the two sequences (at least `min_match_len`
// long), mark it as a tile, and charge one block operation for it. The
// distance is then
//     unmatched_a + unmatched_b + block_cost · #tiles,
// i.e. every symbol not covered by a common block costs 1 and every block
// relocation costs `block_cost`. This captures the paper's motivating
// example: aaaabbb vs bbbaaaa has one large tile ("aaaa") plus one smaller
// ("bbb"), so its EDBO distance is tiny while the plain edit distance is 6.

#ifndef CLUSEQ_BASELINES_BLOCK_EDIT_DISTANCE_H_
#define CLUSEQ_BASELINES_BLOCK_EDIT_DISTANCE_H_

#include <cstddef>
#include <span>

#include "seq/sequence.h"

namespace cluseq {

struct BlockEditOptions {
  /// Minimum tile length considered a "block"; shorter common substrings
  /// are left to the per-symbol charge.
  size_t min_match_len = 3;

  /// Cost of relocating one block.
  double block_cost = 1.0;
};

struct BlockEditResult {
  double distance = 0.0;
  size_t num_tiles = 0;
  size_t matched_symbols = 0;  ///< Per sequence (tiles cover both equally).
};

/// Greedy-string-tiling block edit distance.
BlockEditResult BlockEditDistance(std::span<const SymbolId> a,
                                  std::span<const SymbolId> b,
                                  const BlockEditOptions& options = {});

inline BlockEditResult BlockEditDistance(
    const Sequence& a, const Sequence& b,
    const BlockEditOptions& options = {}) {
  return BlockEditDistance(std::span<const SymbolId>(a.symbols()),
                           std::span<const SymbolId>(b.symbols()), options);
}

}  // namespace cluseq

#endif  // CLUSEQ_BASELINES_BLOCK_EDIT_DISTANCE_H_
