// Unified entry points for the baseline clusterers of Table 2.
//
// Each returns a hard assignment (one cluster id per sequence) so all five
// models — CLUSEQ, ED, EDBO, HMM, q-gram — can be scored with the same
// evaluation code.

#ifndef CLUSEQ_BASELINES_BASELINE_CLUSTERERS_H_
#define CLUSEQ_BASELINES_BASELINE_CLUSTERERS_H_

#include <cstdint>
#include <vector>

#include "baselines/block_edit_distance.h"
#include "baselines/hmm.h"
#include "baselines/qgram.h"
#include "seq/sequence_store.h"
#include "util/status.h"

namespace cluseq {

struct DistanceClusterOptions {
  size_t num_clusters = 2;
  size_t max_iterations = 20;
  uint64_t seed = 42;
};

/// k-medoids over plain edit distance (the ED baseline).
Status EditDistanceCluster(const SequenceStore& db,
                           const DistanceClusterOptions& options,
                           std::vector<int32_t>* assignment);

/// k-medoids over the greedy-string-tiling block edit distance (EDBO).
Status BlockEditCluster(const SequenceStore& db,
                        const DistanceClusterOptions& options,
                        const BlockEditOptions& block_options,
                        std::vector<int32_t>* assignment);

// QGramCluster and HmmCluster are declared in their own headers and
// re-exported here for convenience.

}  // namespace cluseq

#endif  // CLUSEQ_BASELINES_BASELINE_CLUSTERERS_H_
