// Classic (Levenshtein) edit distance between symbol sequences.
//
// This is the ED baseline of the paper's Table 2. Unit costs for insertion,
// deletion and substitution; O(l1 · l2) time, O(min(l1, l2)) space. A banded
// variant bounds the computation to |i - j| <= band for long near-equal
// sequences.

#ifndef CLUSEQ_BASELINES_EDIT_DISTANCE_H_
#define CLUSEQ_BASELINES_EDIT_DISTANCE_H_

#include <cstddef>
#include <span>

#include "seq/sequence.h"

namespace cluseq {

/// Unit-cost edit distance.
size_t EditDistance(std::span<const SymbolId> a, std::span<const SymbolId> b);

inline size_t EditDistance(const Sequence& a, const Sequence& b) {
  return EditDistance(std::span<const SymbolId>(a.symbols()),
                      std::span<const SymbolId>(b.symbols()));
}

/// Edit distance restricted to the diagonal band |i - j| <= band. Returns
/// the exact distance when it is <= band; otherwise a value > band (an
/// upper-bound clamp). band >= |l1 - l2| is required for a finite result.
size_t BandedEditDistance(std::span<const SymbolId> a,
                          std::span<const SymbolId> b, size_t band);

/// Edit distance normalized to [0, 1] by max(l1, l2); 0 for two empties.
double NormalizedEditDistance(std::span<const SymbolId> a,
                              std::span<const SymbolId> b);

}  // namespace cluseq

#endif  // CLUSEQ_BASELINES_EDIT_DISTANCE_H_
