#include "baselines/block_edit_distance.h"

#include <algorithm>
#include <vector>

namespace cluseq {

namespace {

// One round of "find the longest common substring of the unmarked parts".
// dp[j] = length of the common suffix of a[..i] / b[..j] consisting solely
// of unmarked positions. O(|a| · |b|).
struct Match {
  size_t a_pos = 0;
  size_t b_pos = 0;
  size_t len = 0;
};

Match LongestUnmarkedMatch(std::span<const SymbolId> a,
                           std::span<const SymbolId> b,
                           const std::vector<bool>& marked_a,
                           const std::vector<bool>& marked_b) {
  Match best;
  std::vector<size_t> prev(b.size() + 1, 0);
  std::vector<size_t> cur(b.size() + 1, 0);
  for (size_t i = 1; i <= a.size(); ++i) {
    cur[0] = 0;
    const bool a_ok = !marked_a[i - 1];
    for (size_t j = 1; j <= b.size(); ++j) {
      if (a_ok && !marked_b[j - 1] && a[i - 1] == b[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        if (cur[j] > best.len) {
          best.len = cur[j];
          best.a_pos = i - cur[j];
          best.b_pos = j - cur[j];
        }
      } else {
        cur[j] = 0;
      }
    }
    prev.swap(cur);
  }
  return best;
}

}  // namespace

BlockEditResult BlockEditDistance(std::span<const SymbolId> a,
                                  std::span<const SymbolId> b,
                                  const BlockEditOptions& options) {
  // Greedy tiling is order-sensitive on ties; canonicalize the argument
  // order so the distance is symmetric by construction.
  if (b.size() < a.size() ||
      (b.size() == a.size() &&
       std::lexicographical_compare(b.begin(), b.end(), a.begin(), a.end()))) {
    std::swap(a, b);
  }
  BlockEditResult result;
  const size_t min_len = std::max<size_t>(options.min_match_len, 1);
  std::vector<bool> marked_a(a.size(), false);
  std::vector<bool> marked_b(b.size(), false);

  for (;;) {
    Match m = LongestUnmarkedMatch(a, b, marked_a, marked_b);
    if (m.len < min_len) break;
    for (size_t p = 0; p < m.len; ++p) {
      marked_a[m.a_pos + p] = true;
      marked_b[m.b_pos + p] = true;
    }
    ++result.num_tiles;
    result.matched_symbols += m.len;
  }

  const size_t unmatched =
      (a.size() - result.matched_symbols) + (b.size() - result.matched_symbols);
  result.distance = static_cast<double>(unmatched) +
                    options.block_cost * static_cast<double>(result.num_tiles);
  return result;
}

}  // namespace cluseq
