// q-gram baseline (paper §1/§6.1): each sequence becomes a bag of length-q
// segments; similarity is the cosine between (sparse) q-gram count vectors;
// clustering is spherical k-means with k-means++ initialization.

#ifndef CLUSEQ_BASELINES_QGRAM_H_
#define CLUSEQ_BASELINES_QGRAM_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "seq/sequence_store.h"
#include "util/rng.h"
#include "util/status.h"

namespace cluseq {

/// Sparse q-gram count profile. Keys are rolling-hash encodings of the
/// q-grams (exact, not lossy, for alphabets up to 2^12 and q <= 5; larger
/// configurations may alias, which only perturbs the baseline slightly).
///
/// Build() caches the L2 norm and a key-sorted (key, count) view, so
/// Cosine() is a cache-friendly merge-join over two sorted arrays with no
/// per-key hashing — same values as a hash-probe dot, just faster.
class QGramProfile {
 public:
  QGramProfile() = default;

  /// Builds the profile of `symbols` with gram length q (q >= 1).
  static QGramProfile Build(std::span<const SymbolId> symbols, size_t q,
                            size_t alphabet_size);

  /// Cosine similarity in [0, 1].
  static double Cosine(const QGramProfile& a, const QGramProfile& b);

  size_t num_distinct() const { return counts_.size(); }
  double norm() const { return norm_; }
  const std::unordered_map<uint64_t, double>& counts() const {
    return counts_;
  }
  /// (key, count) pairs sorted by key; parallel to counts().
  const std::vector<std::pair<uint64_t, double>>& sorted_counts() const {
    return sorted_;
  }

 private:
  std::unordered_map<uint64_t, double> counts_;
  std::vector<std::pair<uint64_t, double>> sorted_;
  double norm_ = 0.0;
};

struct QGramClusterOptions {
  size_t q = 3;
  size_t num_clusters = 2;
  size_t max_iterations = 50;
  uint64_t seed = 42;
};

/// Hard assignment of each sequence to one of k clusters via spherical
/// k-means over q-gram profiles. Fills `assignment` with cluster ids in
/// [0, k).
Status QGramCluster(const SequenceStore& db,
                    const QGramClusterOptions& options,
                    std::vector<int32_t>* assignment);

}  // namespace cluseq

#endif  // CLUSEQ_BASELINES_QGRAM_H_
