#include "baselines/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cluseq {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kFloor = 1e-8;  // Keeps all parameters strictly positive.

void NormalizeRow(double* row, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += row[i];
  if (sum <= 0.0) {
    for (size_t i = 0; i < n; ++i) row[i] = 1.0 / static_cast<double>(n);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    row[i] = std::max(row[i] / sum, kFloor);
  }
  // Re-normalize after flooring.
  sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += row[i];
  for (size_t i = 0; i < n; ++i) row[i] /= sum;
}
}  // namespace

Hmm::Hmm(size_t num_states, size_t alphabet_size)
    : num_states_(std::max<size_t>(num_states, 1)),
      alphabet_size_(std::max<size_t>(alphabet_size, 1)),
      pi_(num_states_, 1.0 / static_cast<double>(num_states_)),
      a_(num_states_ * num_states_, 1.0 / static_cast<double>(num_states_)),
      b_(num_states_ * alphabet_size_,
         1.0 / static_cast<double>(alphabet_size_)) {}

void Hmm::RandomInit(Rng* rng) {
  for (double& v : pi_) v = 0.5 + rng->UniformDouble();
  for (double& v : a_) v = 0.5 + rng->UniformDouble();
  for (double& v : b_) v = 0.5 + rng->UniformDouble();
  NormalizeRow(pi_.data(), num_states_);
  for (size_t s = 0; s < num_states_; ++s) {
    NormalizeRow(&a_[s * num_states_], num_states_);
    NormalizeRow(&b_[s * alphabet_size_], alphabet_size_);
  }
}

double Hmm::Forward(std::span<const SymbolId> symbols,
                    std::vector<double>* alpha,
                    std::vector<double>* scale) const {
  const size_t t_len = symbols.size();
  const size_t s_n = num_states_;
  alpha->assign(t_len * s_n, 0.0);
  scale->assign(t_len, 0.0);
  if (t_len == 0) return kNegInf;

  double* a0 = alpha->data();
  double c0 = 0.0;
  for (size_t s = 0; s < s_n; ++s) {
    a0[s] = pi_[s] * b_[s * alphabet_size_ + symbols[0]];
    c0 += a0[s];
  }
  if (c0 <= 0.0) c0 = std::numeric_limits<double>::min();
  for (size_t s = 0; s < s_n; ++s) a0[s] /= c0;
  (*scale)[0] = c0;

  for (size_t t = 1; t < t_len; ++t) {
    const double* prev = alpha->data() + (t - 1) * s_n;
    double* cur = alpha->data() + t * s_n;
    double ct = 0.0;
    for (size_t s = 0; s < s_n; ++s) {
      double acc = 0.0;
      for (size_t r = 0; r < s_n; ++r) acc += prev[r] * a_[r * s_n + s];
      cur[s] = acc * b_[s * alphabet_size_ + symbols[t]];
      ct += cur[s];
    }
    if (ct <= 0.0) ct = std::numeric_limits<double>::min();
    for (size_t s = 0; s < s_n; ++s) cur[s] /= ct;
    (*scale)[t] = ct;
  }

  double ll = 0.0;
  for (double c : *scale) ll += std::log(c);
  return ll;
}

void Hmm::Backward(std::span<const SymbolId> symbols,
                   const std::vector<double>& scale,
                   std::vector<double>* beta) const {
  const size_t t_len = symbols.size();
  const size_t s_n = num_states_;
  beta->assign(t_len * s_n, 0.0);
  if (t_len == 0) return;
  double* last = beta->data() + (t_len - 1) * s_n;
  for (size_t s = 0; s < s_n; ++s) last[s] = 1.0 / scale[t_len - 1];
  for (size_t t = t_len - 1; t > 0; --t) {
    const double* next = beta->data() + t * s_n;
    double* cur = beta->data() + (t - 1) * s_n;
    for (size_t s = 0; s < s_n; ++s) {
      double acc = 0.0;
      for (size_t r = 0; r < s_n; ++r) {
        acc += a_[s * s_n + r] * b_[r * alphabet_size_ + symbols[t]] *
               next[r];
      }
      cur[s] = acc / scale[t - 1];
    }
  }
}

double Hmm::LogLikelihood(std::span<const SymbolId> symbols) const {
  std::vector<double> alpha, scale;
  return Forward(symbols, &alpha, &scale);
}

double Hmm::LogLikelihoodPerSymbol(std::span<const SymbolId> symbols) const {
  if (symbols.empty()) return kNegInf;
  return LogLikelihood(symbols) / static_cast<double>(symbols.size());
}

double Hmm::BaumWelchStep(
    const std::vector<std::span<const SymbolId>>& data) {
  const size_t s_n = num_states_;
  std::vector<double> pi_acc(s_n, 0.0);
  std::vector<double> a_num(s_n * s_n, 0.0);
  std::vector<double> a_den(s_n, 0.0);
  std::vector<double> b_num(s_n * alphabet_size_, 0.0);
  std::vector<double> b_den(s_n, 0.0);
  double total_ll = 0.0;

  std::vector<double> alpha, beta, scale;
  for (const auto& symbols : data) {
    if (symbols.empty()) continue;
    const size_t t_len = symbols.size();
    total_ll += Forward(symbols, &alpha, &scale);
    Backward(symbols, scale, &beta);

    // gamma_t(s) ∝ alpha_t(s) * beta_t(s); with this scaling convention
    // alpha_t(s) * beta_t(s) * scale[t] sums to 1 over s.
    for (size_t t = 0; t < t_len; ++t) {
      const double* at = alpha.data() + t * s_n;
      const double* bt = beta.data() + t * s_n;
      for (size_t s = 0; s < s_n; ++s) {
        double gamma = at[s] * bt[s] * scale[t];
        if (t == 0) pi_acc[s] += gamma;
        b_num[s * alphabet_size_ + symbols[t]] += gamma;
        b_den[s] += gamma;
        if (t + 1 < t_len) a_den[s] += gamma;
      }
    }
    // xi_t(r, s) = alpha_t(r) * a(r,s) * b(s, o_{t+1}) * beta_{t+1}(s).
    for (size_t t = 0; t + 1 < t_len; ++t) {
      const double* at = alpha.data() + t * s_n;
      const double* bt1 = beta.data() + (t + 1) * s_n;
      for (size_t r = 0; r < s_n; ++r) {
        for (size_t s = 0; s < s_n; ++s) {
          a_num[r * s_n + s] += at[r] * a_[r * s_n + s] *
                                b_[s * alphabet_size_ + symbols[t + 1]] *
                                bt1[s];
        }
      }
    }
  }

  // M-step with flooring to keep the model fully supported.
  for (size_t s = 0; s < s_n; ++s) pi_[s] = pi_acc[s];
  NormalizeRow(pi_.data(), s_n);
  for (size_t r = 0; r < s_n; ++r) {
    if (a_den[r] > 0.0) {
      for (size_t s = 0; s < s_n; ++s) a_[r * s_n + s] = a_num[r * s_n + s];
    }
    NormalizeRow(&a_[r * s_n], s_n);
    if (b_den[r] > 0.0) {
      for (size_t v = 0; v < alphabet_size_; ++v) {
        b_[r * alphabet_size_ + v] = b_num[r * alphabet_size_ + v];
      }
    }
    NormalizeRow(&b_[r * alphabet_size_], alphabet_size_);
  }
  return total_ll;
}

double Hmm::Train(const std::vector<std::span<const SymbolId>>& data,
                  size_t max_iters, double tol) {
  double prev = kNegInf;
  for (size_t i = 0; i < max_iters; ++i) {
    double ll = BaumWelchStep(data);
    if (std::isfinite(prev) && ll - prev < tol) {
      return ll;
    }
    prev = ll;
  }
  // One more forward pass for the post-update likelihood.
  double ll = 0.0;
  for (const auto& s : data) {
    if (!s.empty()) ll += LogLikelihood(s);
  }
  return ll;
}

Status HmmCluster(const SequenceStore& db, const HmmClusterOptions& options,
                  std::vector<int32_t>* assignment) {
  const size_t n = db.size();
  assignment->assign(n, -1);
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (options.num_states == 0) {
    return Status::InvalidArgument("num_states must be >= 1");
  }
  if (n == 0) return Status::OK();
  const size_t k = std::min(options.num_clusters, n);

  Rng rng(options.seed);
  std::vector<int32_t>& assign = *assignment;

  // Symmetry breaking: each model is seeded by training on one distinct
  // random sequence (a random partition of mixed data would pull every
  // model toward the same average and the mixture would collapse).
  std::vector<size_t> seeds = rng.SampleWithoutReplacement(n, k);
  std::vector<Hmm> models;
  models.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    models.emplace_back(options.num_states, db.alphabet().size());
    models.back().RandomInit(&rng);
    std::vector<std::span<const SymbolId>> seed_data = {
        db.Symbols(seeds[c])};
    models[c].Train(seed_data, options.em_iters_per_round);
  }
  // Initial assignment from the seeded models.
  for (size_t i = 0; i < n; ++i) {
    double best = kNegInf;
    int32_t best_c = 0;
    for (size_t c = 0; c < k; ++c) {
      double ll = models[c].LogLikelihoodPerSymbol(
          db.Symbols(i));
      if (ll > best) {
        best = ll;
        best_c = static_cast<int32_t>(c);
      }
    }
    assign[i] = best_c;
  }

  for (size_t round = 0; round < options.max_rounds; ++round) {
    // Refit each model on its members.
    for (size_t c = 0; c < k; ++c) {
      std::vector<std::span<const SymbolId>> members;
      for (size_t i = 0; i < n; ++i) {
        if (assign[i] == static_cast<int32_t>(c)) {
          members.emplace_back(db.Symbols(i));
        }
      }
      if (members.empty()) {
        // Re-seed an empty cluster from a random sequence.
        members.emplace_back(db.Symbols(rng.Uniform(n)));
      }
      models[c].Train(members, options.em_iters_per_round);
    }
    // Reassign.
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = kNegInf;
      int32_t best_c = assign[i];
      for (size_t c = 0; c < k; ++c) {
        double ll = models[c].LogLikelihoodPerSymbol(
            db.Symbols(i));
        if (ll > best) {
          best = ll;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (best_c != assign[i]) {
        assign[i] = best_c;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return Status::OK();
}

}  // namespace cluseq
