#include "baselines/qgram.h"

#include <algorithm>
#include <cmath>

namespace cluseq {

QGramProfile QGramProfile::Build(std::span<const SymbolId> symbols, size_t q,
                                 size_t alphabet_size) {
  QGramProfile p;
  if (q == 0 || symbols.size() < q) return p;
  const uint64_t base = std::max<uint64_t>(alphabet_size, 2);
  for (size_t i = 0; i + q <= symbols.size(); ++i) {
    uint64_t key = 0;
    for (size_t j = 0; j < q; ++j) {
      key = key * base + symbols[i + j];
    }
    p.counts_[key] += 1.0;
  }
  double sq = 0.0;
  p.sorted_.reserve(p.counts_.size());
  for (const auto& [k, v] : p.counts_) {
    sq += v * v;
    p.sorted_.emplace_back(k, v);
  }
  std::sort(p.sorted_.begin(), p.sorted_.end());
  p.norm_ = std::sqrt(sq);
  return p;
}

double QGramProfile::Cosine(const QGramProfile& a, const QGramProfile& b) {
  if (a.norm_ == 0.0 || b.norm_ == 0.0) return 0.0;
  // Merge-join over the key-sorted views: one linear pass, no hashing.
  double dot = 0.0;
  auto ia = a.sorted_.begin();
  auto ib = b.sorted_.begin();
  while (ia != a.sorted_.end() && ib != b.sorted_.end()) {
    if (ia->first < ib->first) {
      ++ia;
    } else if (ib->first < ia->first) {
      ++ib;
    } else {
      dot += ia->second * ib->second;
      ++ia;
      ++ib;
    }
  }
  return dot / (a.norm_ * b.norm_);
}

namespace {

// Sparse centroid with cached norm.
struct Centroid {
  std::unordered_map<uint64_t, double> weights;
  double norm = 0.0;

  void Recompute() {
    double sq = 0.0;
    for (const auto& [k, v] : weights) sq += v * v;
    norm = std::sqrt(sq);
  }

  double Cosine(const QGramProfile& p) const {
    if (norm == 0.0 || p.norm() == 0.0) return 0.0;
    double dot = 0.0;
    for (const auto& [k, v] : p.counts()) {
      auto it = weights.find(k);
      if (it != weights.end()) dot += v * it->second;
    }
    return dot / (norm * p.norm());
  }
};

Centroid MeanOf(const std::vector<QGramProfile>& profiles,
                const std::vector<size_t>& members) {
  Centroid c;
  for (size_t m : members) {
    const QGramProfile& p = profiles[m];
    if (p.norm() == 0.0) continue;
    for (const auto& [k, v] : p.counts()) {
      c.weights[k] += v / p.norm();  // Spherical: sum of unit vectors.
    }
  }
  c.Recompute();
  return c;
}

}  // namespace

Status QGramCluster(const SequenceStore& db,
                    const QGramClusterOptions& options,
                    std::vector<int32_t>* assignment) {
  const size_t n = db.size();
  assignment->assign(n, -1);
  if (options.q == 0) return Status::InvalidArgument("q must be >= 1");
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("num_clusters must be >= 1");
  }
  if (n == 0) return Status::OK();
  const size_t k = std::min(options.num_clusters, n);

  std::vector<QGramProfile> profiles(n);
  for (size_t i = 0; i < n; ++i) {
    profiles[i] = QGramProfile::Build(
        db.Symbols(i), options.q,
        db.alphabet().size());
  }

  // k-means++ initialization with distance = 1 - cosine.
  Rng rng(options.seed);
  std::vector<Centroid> centroids;
  std::vector<double> min_dist(n, 1.0);
  size_t first = rng.Uniform(n);
  centroids.push_back(MeanOf(profiles, {first}));
  while (centroids.size() < k) {
    for (size_t i = 0; i < n; ++i) {
      double d = 1.0 - centroids.back().Cosine(profiles[i]);
      min_dist[i] = std::min(min_dist[i], d);
    }
    std::vector<double> weights(n);
    for (size_t i = 0; i < n; ++i) weights[i] = min_dist[i] * min_dist[i];
    centroids.push_back(MeanOf(profiles, {rng.Categorical(weights)}));
  }

  std::vector<int32_t>& assign = *assignment;
  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    bool changed = false;
    for (size_t i = 0; i < n; ++i) {
      double best = -1.0;
      int32_t best_c = 0;
      for (size_t c = 0; c < centroids.size(); ++c) {
        double s = centroids[c].Cosine(profiles[i]);
        if (s > best) {
          best = s;
          best_c = static_cast<int32_t>(c);
        }
      }
      if (assign[i] != best_c) {
        assign[i] = best_c;
        changed = true;
      }
    }
    if (!changed && iter > 0) break;
    // Recompute centroids; re-seed any that went empty.
    std::vector<std::vector<size_t>> members(centroids.size());
    for (size_t i = 0; i < n; ++i) {
      members[static_cast<size_t>(assign[i])].push_back(i);
    }
    for (size_t c = 0; c < centroids.size(); ++c) {
      if (members[c].empty()) {
        centroids[c] = MeanOf(profiles, {rng.Uniform(n)});
      } else {
        centroids[c] = MeanOf(profiles, members[c]);
      }
    }
  }
  return Status::OK();
}

}  // namespace cluseq
