// Umbrella header: the public API of the CLUSEQ library.
//
// Quick start:
//
//   #include "cluseq/cluseq.h"
//
//   cluseq::SequenceDatabase db;
//   db.AddText("abcabcabd", "s0");
//   ...
//   cluseq::CluseqOptions options;
//   options.initial_clusters = 2;
//   cluseq::ClusteringResult result;
//   cluseq::Status st = cluseq::RunCluseq(db, options, &result);

#ifndef CLUSEQ_CLUSEQ_CLUSEQ_H_
#define CLUSEQ_CLUSEQ_CLUSEQ_H_

#include "baselines/baseline_clusterers.h"
#include "baselines/block_edit_distance.h"
#include "baselines/edit_distance.h"
#include "baselines/hmm.h"
#include "baselines/kmedoids.h"
#include "baselines/qgram.h"
#include "core/checkpoint.h"
#include "core/cluseq.h"
#include "core/cluster.h"
#include "core/online_scorer.h"
#include "core/prefilter.h"
#include "core/seeding.h"
#include "core/similarity.h"
#include "core/threshold.h"
#include "eval/contingency.h"
#include "eval/metrics.h"
#include "eval/report.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/prometheus.h"
#include "obs/report_diff.h"
#include "obs/run_report.h"
#include "obs/trace.h"
#include "pst/bank_serialization.h"
#include "pst/frozen_bank.h"
#include "pst/frozen_pst.h"
#include "pst/pst.h"
#include "pst/pst_dot.h"
#include "pst/pst_serialization.h"
#include "seq/alphabet.h"
#include "seq/background_model.h"
#include "seq/io.h"
#include "seq/seqdb_reader.h"
#include "seq/seqdb_writer.h"
#include "seq/sequence.h"
#include "seq/sequence_database.h"
#include "seq/sequence_store.h"
#include "seq/suffix_array.h"
#include "synth/dataset.h"
#include "synth/generator_model.h"
#include "synth/language_like.h"
#include "synth/protein_like.h"
#include "util/build_info.h"
#include "util/cancellation.h"
#include "util/crc32c.h"
#include "util/fault_injection.h"
#include "util/file_io.h"
#include "util/histogram.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/stopwatch.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

#endif  // CLUSEQ_CLUSEQ_CLUSEQ_H_
